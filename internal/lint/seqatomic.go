package lint

// seqatomic: fields annotated //repro:seqguarded (directly, via their
// struct's doc, or via a file-level directive covering every struct in
// the file) hold words that lock-free seqlock readers observe while
// writers mutate them. Under the Go memory model every access to such a
// word must go through sync/atomic — a plain load racing a plain store
// is undefined behaviour even if the torn value is discarded by the
// generation check afterwards, which is exactly why the race detector
// cannot be trusted to find these: the reader *rejects* torn values, so
// -race sees a correctly synchronized execution almost every run while
// the compiler remains free to miscompile the plain access.
//
// Allowed accesses to a guarded field (or an element of a guarded
// slice/array field):
//
//   - &f passed (possibly through conversions) to a sync/atomic call or
//     to a same-package function annotated //repro:seqaccessor;
//   - len(f), cap(f), and single-variable `range f` (slice headers are
//     immutable once published; only the elements are guarded);
//   - the field name as a composite-literal key (construction happens
//     before publication);
//   - any access inside a //repro:seqexempt or //repro:seqaccessor
//     function (pre-publication construction and the accessors
//     themselves).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeqAtomic is the seqatomic analyzer.
var SeqAtomic = &Analyzer{
	Name: "seqatomic",
	Doc:  "seqguarded fields must be accessed through sync/atomic only",
	Run:  runSeqAtomic,
}

func runSeqAtomic(p *Pass) error {
	guarded := guardedFields(p)
	if len(guarded) == 0 {
		return nil
	}
	dirs := p.Directives()
	decls := funcDecls(p)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || (!guarded[obj] && !guarded[originVar(obj)]) {
				return true
			}
			if fd := enclosingFunc(p, sel); fd != nil &&
				(dirs.FuncHas(fd, DirSeqExempt) || dirs.FuncHas(fd, DirSeqAccessor)) {
				return true
			}
			if !seqAccessAllowed(p, sel, decls) {
				p.Reportf(sel.Pos(), "plain access to seqguarded field %s: go through sync/atomic (or a //repro:seqaccessor helper); a torn value discarded later is still a data race the race detector cannot see",
					obj.Name())
			}
			return true
		})
	}
	return nil
}

// originVar maps a field var of an instantiated generic type back to
// the generic declaration's field object, where the directive lives.
func originVar(v *types.Var) *types.Var { return v.Origin() }

// guardedFields collects the //repro:seqguarded field objects: fields
// annotated directly, fields of annotated structs, and every struct
// field in a file carrying the file-level directive.
func guardedFields(p *Pass) map[*types.Var]bool {
	dirs := p.Directives()
	guarded := make(map[*types.Var]bool)
	for _, file := range p.Files {
		fileWide := dirs.FileHas(file, DirSeqGuarded)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				typeWide := fileWide || dirs.TypeHas(ts, DirSeqGuarded)
				for _, field := range st.Fields.List {
					if !typeWide && !dirs.FieldHas(field, DirSeqGuarded) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
							guarded[v] = true
							guarded[v.Origin()] = true
						}
					}
				}
			}
		}
	}
	return guarded
}

// seqAccessAllowed reports whether this use of a guarded field is one
// of the blessed forms.
func seqAccessAllowed(p *Pass, sel *ast.SelectorExpr, decls map[*types.Func]*ast.FuncDecl) bool {
	// Walk outward past the operations that stay within the same
	// access: indexing (an element of a guarded array/slice field),
	// parens, and — once behind &x — pointer conversions on the way
	// into an atomic call.
	cur := ast.Node(sel)
	parent := p.Parent(cur)
	for {
		switch pn := parent.(type) {
		case *ast.ParenExpr:
			cur, parent = pn, p.Parent(pn)
			continue
		case *ast.IndexExpr:
			if pn.X == cur { // f[i]: still the same guarded word
				cur, parent = pn, p.Parent(pn)
				continue
			}
		}
		break
	}

	switch pn := parent.(type) {
	case *ast.UnaryExpr:
		// &f or &f[i]: allowed exactly when the pointer feeds an atomic
		// accessor call.
		if pn.Op == token.AND {
			return addressFeedsAtomic(p, pn, decls)
		}
	case *ast.CallExpr:
		// len(f) / cap(f) touch only the immutable slice header.
		switch builtinName(p.TypesInfo, pn) {
		case "len", "cap":
			return true
		}
	case *ast.RangeStmt:
		// Single-variable range reads only the header and indices.
		if pn.X == cur && pn.Value == nil {
			return true
		}
	case *ast.KeyValueExpr:
		// Composite-literal construction: SeqView{counts: ...}.
		if pn.Key == cur {
			return true
		}
	}
	return false
}

// addressFeedsAtomic reports whether &f (possibly wrapped in pointer
// conversions and parens) is an argument of a sync/atomic call or of a
// //repro:seqaccessor function of this package.
func addressFeedsAtomic(p *Pass, addr ast.Expr, decls map[*types.Func]*ast.FuncDecl) bool {
	cur := ast.Node(addr)
	for {
		parent := p.Parent(cur)
		switch pn := parent.(type) {
		case *ast.ParenExpr:
			cur = pn
			continue
		case *ast.CallExpr:
			if isConversion(p.TypesInfo, pn) {
				cur = pn // (*uint32)(unsafe.Pointer(&f[i])) and the like
				continue
			}
			if fn := calleeFunc(p.TypesInfo, pn); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					return true
				}
				if fn.Pkg() == p.Pkg {
					if decl, ok := decls[fn.Origin()]; ok && p.Directives().FuncHas(decl, DirSeqAccessor) {
						return true
					}
				}
			}
			return false
		default:
			return false
		}
	}
}
