package lint

// fsyncorder: the durability-ordering protocol, checked path-sensitively
// over the control-flow graph. PR 8 fixed two ordering bugs this suite's
// lexical analyzers could not express: WAL.Sync un-sticking an earlier
// fsync failure before returning success, and Checkpoint leaving
// snapshot.tmp behind when the publishing rename failed. Both were
// error-PATH bugs — the operations were right, the order of stores and
// returns on the failure path was wrong — and this analyzer re-catches
// both shapes mechanically (pinned in testdata/fsyncorder/flagged).
//
// The contract, per //repro:poisons-annotated function:
//
//   - On every path where a //repro:durable operation (an annotated
//     walFile method, or os.Rename / (*os.File).Sync / (*os.File).Truncate)
//     returns a non-nil error, a poison action must run before that
//     error can reach a return: a store to a declared sticky-error
//     field, a branch that consults one (the already-poisoned check),
//     or a call of a declared cleanup target (e.g. os.Remove).
//   - A durable operation's error may not be discarded or returned
//     straight through — both skip the poison entirely.
//   - A success acknowledgement (a literal nil in the error result)
//     must be dominated by a durable operation or a poison-target
//     consultation: acking without ever having synced (or checked the
//     sticky error) is how un-durable writes get acknowledged.
//
// Paths are pruned where the error is proven nil (err == nil / err !=
// nil conditions, including as the first operand of && and ||), so the
// group-commit shapes — where the poison store sits under `if err !=
// nil` and a shared `return err` follows the join — verify precisely.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/cfg"
)

// FsyncOrder is the fsyncorder analyzer.
var FsyncOrder = &Analyzer{
	Name: "fsyncorder",
	Doc:  "//repro:durable operation errors are poisoned before any return; acks are dominated by a durable op",
	Run:  runFsyncOrder,
}

// poisonTargets is a parsed //repro:poisons argument list. A bare token
// names a sticky field (matched on stores and condition reads) or a
// callee (matched by function name); a dotted token like os.Remove
// names a cleanup function qualified by package or receiver type.
type poisonTargets struct {
	names []string // bare tokens: field or callee names
	calls [][2]string
}

func parsePoisonTargets(args string) poisonTargets {
	var t poisonTargets
	for _, tok := range strings.Fields(args) {
		if qual, name, ok := strings.Cut(tok, "."); ok {
			t.calls = append(t.calls, [2]string{qual, name})
		} else {
			t.names = append(t.names, tok)
		}
	}
	return t
}

func runFsyncOrder(p *Pass) error {
	dirs := p.Directives()
	decls := funcDecls(p)
	durables := durableOps(p)
	for _, fd := range sortedDecls(decls) {
		dir, ok := dirs.Func(fd, DirPoisons)
		if !ok || fd.Body == nil {
			continue
		}
		targets := parsePoisonTargets(dir.Args)
		if len(targets.names) == 0 && len(targets.calls) == 0 {
			p.Reportf(dir.Pos, "//repro:poisons needs targets: the sticky-error fields or cleanup calls that absorb a failed durable op in %s", fd.Name.Name)
			continue
		}
		checkFsyncFunc(p, fd, targets, durables, decls)
	}
	return nil
}

// durableOps collects the //repro:durable operations visible in this
// package: annotated function/method declarations and annotated
// interface methods (the walFile seam), plus the built-in os durability
// entry points matched in isDurableCall.
func durableOps(p *Pass) map[*types.Func]bool {
	dirs := p.Directives()
	ops := make(map[*types.Func]bool)
	for fn, fd := range p.FuncDecls() {
		if dirs.FuncHas(fd, DirDurable) {
			ops[fn] = true
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok || it.Methods == nil {
					continue
				}
				for _, field := range it.Methods.List {
					if !dirs.FieldHas(field, DirDurable) {
						continue
					}
					for _, name := range field.Names {
						if fn, ok := p.TypesInfo.Defs[name].(*types.Func); ok {
							ops[fn] = true
						}
					}
				}
			}
		}
	}
	return ops
}

// isDurableCall reports whether the call is a //repro:durable operation:
// an annotated declaration or interface method, or one of the built-in
// os durability points (Rename, and the File Sync/Truncate methods).
func isDurableCall(p *Pass, call *ast.CallExpr, durables map[*types.Func]bool) bool {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return false
	}
	if durables[fn.Origin()] {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "os" {
		switch fn.Name() {
		case "Rename", "Sync", "Truncate":
			return true
		}
	}
	return false
}

func durableCallName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p.TypesInfo, call); fn != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if x, ok := unparen(sel.X).(*ast.Ident); ok {
				return x.Name + "." + fn.Name()
			}
			return fn.Name()
		}
		return fn.Name()
	}
	return "durable op"
}

func checkFsyncFunc(p *Pass, fd *ast.FuncDecl, targets poisonTargets, durables map[*types.Func]bool, decls map[*types.Func]*ast.FuncDecl) {
	g := p.CFG(fd)
	if g == nil {
		return
	}

	// Pass 1: every durable call's error must be captured, then poisoned
	// on each path where it remains non-nil before reaching a return.
	inspectNoFuncLit(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isDurableCall(p, call, durables) {
			return
		}
		name := durableCallName(p, call)
		parent := p.Parent(call)
		for {
			if pe, ok := parent.(*ast.ParenExpr); ok {
				parent = p.Parent(pe)
				continue
			}
			break
		}
		switch pa := parent.(type) {
		case *ast.AssignStmt:
			if len(pa.Rhs) != 1 || unparen(pa.Rhs[0]) != call {
				p.Reportf(call.Pos(), "error of //repro:durable %s is not captured into a dedicated variable — it cannot be poisoned (%s)", name, fd.Name.Name)
				return
			}
			errObj := errorLHS(p, pa)
			if errObj == nil {
				p.Reportf(call.Pos(), "error of //repro:durable %s is discarded — a failed durability op must poison (%s)", name, fd.Name.Name)
				return
			}
			traceErrorPaths(p, g, pa, errObj, targets, decls, name)
		case *ast.ReturnStmt:
			p.Reportf(call.Pos(), "error of //repro:durable %s is returned directly — no //repro:poisons action (%s) can run on its failure path", name, strings.Join(append(targets.names, flatten(targets.calls)...), ", "))
		case *ast.ExprStmt:
			p.Reportf(call.Pos(), "error of //repro:durable %s is discarded — a failed durability op must poison (%s)", name, fd.Name.Name)
		default:
			p.Reportf(call.Pos(), "error of //repro:durable %s is consumed inline — capture it so a //repro:poisons action can run on failure (%s)", name, fd.Name.Name)
		}
	})

	// Pass 2: success acks. A literal nil in the error result slot must
	// be dominated by a durable op or a poison-target consultation.
	sig, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
	if sig == nil {
		return
	}
	res := sig.Signature().Results()
	errIdx := -1
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	inspectNoFuncLit(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != res.Len() {
			return
		}
		expr := ret.Results[errIdx]
		if tv, ok := p.TypesInfo.Types[expr]; !ok || !tv.IsNil() {
			return
		}
		if !ackDominated(p, g, ret, targets, durables, decls) {
			p.Reportf(ret.Pos(), "success ack (nil error) in //repro:poisons %s is not dominated by a //repro:durable op or a check of its poison targets (%s)", fd.Name.Name, strings.Join(append(targets.names, flatten(targets.calls)...), ", "))
		}
	})
}

func flatten(calls [][2]string) []string {
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = c[0] + "." + c[1]
	}
	return out
}

// errorLHS returns the object of the error-typed variable a durable
// call's result is assigned to, or nil when it lands in the blank
// identifier (or no error-typed LHS exists).
func errorLHS(p *Pass, as *ast.AssignStmt) types.Object {
	var last types.Object
	for _, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := p.TypesInfo.Defs[id]
		if obj == nil {
			obj = p.TypesInfo.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			last = obj
		}
	}
	return last
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// traceErrorPaths walks the CFG forward from the capturing assignment,
// pruning edges where the error is proven nil and stopping at poison
// actions; any reachable return that mentions the error is a finding.
func traceErrorPaths(p *Pass, g *cfg.Graph, site *ast.AssignStmt, errObj types.Object, targets poisonTargets, decls map[*types.Func]*ast.FuncDecl, name string) {
	blk, idx := g.BlockOf(site)
	if blk == nil {
		return
	}
	type item struct {
		blk   *cfg.Block
		start int
	}
	visited := map[*cfg.Block]bool{}
	work := []item{{blk, idx + 1}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		stopped := false
		for i := it.start; i < len(it.blk.Nodes); i++ {
			n := it.blk.Nodes[i]
			if isPoisonAction(p, n, targets, decls) {
				stopped = true
				break
			}
			if reassignsObj(p, n, errObj) {
				stopped = true // the variable no longer carries this op's error
				break
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if refsObj(p, ret, errObj) {
					p.Reportf(ret.Pos(), "error from //repro:durable %s can reach this return with no //repro:poisons action (%s) on the path", name, strings.Join(append(targets.names, flatten(targets.calls)...), ", "))
				}
				stopped = true
				break
			}
		}
		if stopped {
			continue
		}
		pruneTrue, pruneFalse := nilEdges(p, it.blk.Cond, errObj)
		for si, s := range it.blk.Succs {
			if it.blk.Cond != nil {
				if si == 0 && pruneTrue {
					continue
				}
				if si == 1 && pruneFalse {
					continue
				}
			}
			if !visited[s] {
				visited[s] = true
				work = append(work, item{s, 0})
			}
		}
	}
}

// isPoisonAction reports whether node n performs (or consults) a poison
// target: a store to a declared sticky field, any read of one inside a
// condition or assignment, a call of a declared cleanup function, or a
// call of a same-package function that is itself //repro:poisons.
func isPoisonAction(p *Pass, n ast.Node, targets poisonTargets, decls map[*types.Func]*ast.FuncDecl) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if refsTargetField(lhs, targets) {
				return true
			}
		}
		return containsTargetCall(p, n, targets, decls) || refsTargetFieldNode(n.Rhs, targets)
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt, *ast.ReturnStmt:
		return containsTargetCall(p, n, targets, decls) || refsTargetFieldAst(n, targets)
	case ast.Expr: // a block-terminating condition
		return containsTargetCall(p, n, targets, decls) || refsTargetFieldAst(n, targets)
	}
	return false
}

func refsTargetField(e ast.Expr, targets poisonTargets) bool {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		return nameIn(e.Sel.Name, targets.names)
	case *ast.Ident:
		return nameIn(e.Name, targets.names)
	}
	return false
}

func refsTargetFieldNode(exprs []ast.Expr, targets poisonTargets) bool {
	for _, e := range exprs {
		if refsTargetFieldAst(e, targets) {
			return true
		}
	}
	return false
}

func refsTargetFieldAst(n ast.Node, targets poisonTargets) bool {
	found := false
	inspectNoFuncLit(n, func(d ast.Node) {
		if sel, ok := d.(*ast.SelectorExpr); ok && nameIn(sel.Sel.Name, targets.names) {
			found = true
		}
	})
	return found
}

func nameIn(name string, names []string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// containsTargetCall reports whether n's subtree calls a poison target:
// a dotted target (package/receiver-qualified), a bare target matched by
// callee name, or a same-package //repro:poisons function (delegation).
func containsTargetCall(p *Pass, n ast.Node, targets poisonTargets, decls map[*types.Func]*ast.FuncDecl) bool {
	found := false
	inspectNoFuncLit(n, func(d ast.Node) {
		call, ok := d.(*ast.CallExpr)
		if !ok || found {
			return
		}
		fn := calleeFunc(p.TypesInfo, call)
		if fn == nil {
			return
		}
		for _, c := range targets.calls {
			if fn.Name() == c[1] && qualMatches(fn, c[0]) {
				found = true
				return
			}
		}
		if nameIn(fn.Name(), targets.names) {
			found = true
			return
		}
		if fd, ok := decls[fn.Origin()]; ok && p.Directives().FuncHas(fd, DirPoisons) {
			found = true
		}
	})
	return found
}

// qualMatches reports whether fn belongs to package (or receiver type)
// qual: os.Remove matches by package name, WAL.Reset by receiver.
func qualMatches(fn *types.Func, qual string) bool {
	if pkg := fn.Pkg(); pkg != nil && pkg.Name() == qual {
		return true
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == qual {
			return true
		}
	}
	return false
}

// reassignsObj reports whether n overwrites the traced error variable
// with something other than itself (the op's error is gone from it).
func reassignsObj(p *Pass, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if o := p.TypesInfo.Uses[id]; o != nil && o == obj {
				return true
			}
			if o := p.TypesInfo.Defs[id]; o != nil && o == obj {
				return true
			}
		}
	}
	return false
}

// refsObj reports whether n's subtree mentions the traced variable.
func refsObj(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	inspectNoFuncLit(n, func(d ast.Node) {
		if id, ok := d.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
			found = true
		}
	})
	return found
}

// nilEdges classifies a branch condition against the traced error:
// (pruneTrue, pruneFalse) mark edges on which the error is proven nil.
// Recognized: err == nil / err != nil, alone or as the deciding operand
// of && and || chains. Everything else keeps both edges (conservative).
func nilEdges(p *Pass, cond ast.Expr, obj types.Object) (pruneTrue, pruneFalse bool) {
	if cond == nil || obj == nil {
		return false, false
	}
	c := unparen(cond)
	if op, ok := nilCompare(p, c, obj); ok {
		if op == token.EQL { // err == nil: true edge has a nil error
			return true, false
		}
		return false, true // err != nil: false edge has a nil error
	}
	if be, ok := c.(*ast.BinaryExpr); ok {
		if op, ok := nilCompare(p, unparen(be.X), obj); ok {
			switch {
			case be.Op == token.LAND && op == token.EQL:
				// (err == nil && X): true edge proves nil.
				return true, false
			case be.Op == token.LOR && op == token.NEQ:
				// (err != nil || X): false edge proves nil.
				return false, true
			}
		}
	}
	if ue, ok := c.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		pt, pf := nilEdges(p, ue.X, obj)
		return pf, pt
	}
	return false, false
}

// nilCompare matches `obj == nil` / `obj != nil` (either operand order).
func nilCompare(p *Pass, e ast.Expr, obj types.Object) (token.Token, bool) {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0, false
	}
	isObj := func(x ast.Expr) bool {
		id, ok := unparen(x).(*ast.Ident)
		return ok && p.TypesInfo.Uses[id] == obj
	}
	isNil := func(x ast.Expr) bool {
		tv, ok := p.TypesInfo.Types[x]
		return ok && tv.IsNil()
	}
	if (isObj(be.X) && isNil(be.Y)) || (isObj(be.Y) && isNil(be.X)) {
		return be.Op, true
	}
	return 0, false
}

// ackDominated reports whether some durable call or poison consultation
// covers (executes on every path to) the given success return.
func ackDominated(p *Pass, g *cfg.Graph, ret *ast.ReturnStmt, targets poisonTargets, durables map[*types.Func]bool, decls map[*types.Func]*ast.FuncDecl) bool {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n == ret {
				continue
			}
			if (containsDurableCall(p, n, durables) || isPoisonAction(p, n, targets, decls)) && g.Covers(n, ret) {
				return true
			}
		}
	}
	return false
}

func containsDurableCall(p *Pass, n ast.Node, durables map[*types.Func]bool) bool {
	found := false
	inspectNoFuncLit(n, func(d ast.Node) {
		if call, ok := d.(*ast.CallExpr); ok && isDurableCall(p, call, durables) {
			found = true
		}
	})
	return found
}

// inspectNoFuncLit walks n's subtree, skipping function literals: their
// bodies execute at call time, not on the enclosing function's paths.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(d ast.Node) bool {
		if d == nil {
			return false
		}
		if _, ok := d.(*ast.FuncLit); ok {
			return false
		}
		fn(d)
		return true
	})
}
