package lint

// boundedinput: the wire/snapshot decode discipline, checked over the
// CFG with dominance. A decoder that trusts a length prefix it just read
// can be forced to allocate (or loop-append) arbitrarily by one lying
// frame — the classic remote-amplification bug. The repository's
// decoders all guard first (`length > maxFrame`, `count > MaxMGetKeys`,
// `n > readChunk`, `length > maxWALRecordBytes`) and allocate second;
// this analyzer makes that ordering mechanical.
//
// Inside a //repro:boundedinput function:
//
//   - every `make` whose size is not a constant and not derived from
//     len/cap of existing memory must be *dominated* by a comparison
//     that mentions one of the size expression's variables — and the
//     condition of a for-loop enclosing the allocation does not count
//     (`for i < count` bounds the trip count with the same lying value;
//     it is not a check against a declared limit);
//   - every single-element `append` inside a counted for-loop (a `for`
//     with a condition) must likewise be dominated by a comparison,
//     outside the loop's own condition, over one of the loop-condition's
//     variables — the `count > MaxMGetKeys`-before-the-loop shape;
//   - spread appends (`append(buf, make(...)...)`) are covered by the
//     checks on their source, and `min`/`max`-clamped sizes pass as
//     already bounded.
//
// The analyzer is deliberately per-function and syntactic about what a
// "bound" is: any dominating comparison over the right variable counts.
// The invariant that the bound is the *declared* one (MaxFrame, section
// caps) stays with the constants' tests; what cannot regress silently is
// the check-before-allocate ordering.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
)

// BoundedInput is the boundedinput analyzer.
var BoundedInput = &Analyzer{
	Name: "boundedinput",
	Doc:  "//repro:boundedinput decoders allocate from decoded sizes only under a dominating bound check",
	Run:  runBoundedInput,
}

func runBoundedInput(p *Pass) error {
	dirs := p.Directives()
	for _, fd := range sortedDecls(funcDecls(p)) {
		if !dirs.FuncHas(fd, DirBoundedIn) || fd.Body == nil {
			continue
		}
		checkBoundedFunc(p, fd)
	}
	return nil
}

func checkBoundedFunc(p *Pass, fd *ast.FuncDecl) {
	g := p.CFG(fd)
	if g == nil {
		return
	}
	inspectNoFuncLit(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch builtinName(p.TypesInfo, call) {
		case "make":
			// make(T, len[, cap]): every non-constant size expression
			// needs a dominating bound.
			for _, size := range call.Args[1:] {
				checkSizeExpr(p, g, fd, call, size)
			}
		case "append":
			checkAppend(p, g, fd, call)
		}
	})
}

// checkSizeExpr requires a dominating comparison over one of the size
// expression's variables, unless the size is constant, memory-derived
// (len/cap), or min/max-clamped.
func checkSizeExpr(p *Pass, g *cfg.Graph, fd *ast.FuncDecl, site *ast.CallExpr, size ast.Expr) {
	if tv, ok := p.TypesInfo.Types[size]; ok && tv.Value != nil {
		return // constant
	}
	if clamped(p, size) {
		return // min(n, chunk) and friends carry their own bound
	}
	roots := rootVars(p, size)
	if len(roots) == 0 {
		return // len/cap-derived or otherwise memory-backed
	}
	if !boundDominates(p, g, fd, site, roots) {
		p.Reportf(site.Pos(), "make sized by %s in //repro:boundedinput %s has no dominating bound check — a lying length prefix forces this allocation", types.ExprString(size), fd.Name.Name)
	}
}

// checkAppend flags single-element appends inside counted loops whose
// trip variables were never compared against a bound outside the loop's
// own condition.
func checkAppend(p *Pass, g *cfg.Graph, fd *ast.FuncDecl, call *ast.CallExpr) {
	if call.Ellipsis != token.NoPos {
		return // append(dst, src...): growth bounded by src, checked at its make
	}
	loop := enclosingCondFor(p, call)
	if loop == nil {
		return // not in a counted loop: growth is O(1) per call
	}
	roots := rootVars(p, loop.Cond)
	if len(roots) == 0 {
		return
	}
	if !boundDominates(p, g, fd, call, roots) {
		p.Reportf(call.Pos(), "append inside `for %s` in //repro:boundedinput %s grows by a decoded count with no dominating bound check", types.ExprString(loop.Cond), fd.Name.Name)
	}
}

// enclosingCondFor returns the innermost for-loop with a condition that
// encloses n, or nil.
func enclosingCondFor(p *Pass, n ast.Node) *ast.ForStmt {
	for cur := ast.Node(n); cur != nil; cur = p.Parent(cur) {
		if fs, ok := cur.(*ast.ForStmt); ok && fs.Cond != nil && fs.Body.Pos() <= n.Pos() && n.Pos() < fs.Body.End() {
			return fs
		}
		if _, ok := cur.(*ast.FuncDecl); ok {
			return nil
		}
	}
	return nil
}

// boundDominates reports whether some comparison over one of roots
// covers the allocation site — excluding conditions of for-loops that
// enclose the site (their trip test is made of the same tainted value).
func boundDominates(p *Pass, g *cfg.Graph, fd *ast.FuncDecl, site ast.Node, roots map[types.Object]bool) bool {
	_ = fd
	for _, b := range g.Blocks {
		cond := b.Cond
		if cond == nil {
			continue
		}
		if fs, ok := p.Parent(cond).(*ast.ForStmt); ok && fs.Cond == cond &&
			fs.Body.Pos() <= site.Pos() && site.Pos() < fs.Body.End() {
			continue // the enclosing loop's own condition is not a bound
		}
		if !comparisonOver(p, cond, roots) {
			continue
		}
		if g.Covers(cond, site) {
			return true
		}
	}
	return false
}

// comparisonOver reports whether the condition contains an ordering
// comparison (< <= > >=) with an operand mentioning one of roots.
func comparisonOver(p *Pass, cond ast.Expr, roots map[types.Object]bool) bool {
	found := false
	inspectNoFuncLit(cond, func(d ast.Node) {
		be, ok := d.(*ast.BinaryExpr)
		if !ok || found {
			return
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if mentionsRoot(p, be.X, roots) || mentionsRoot(p, be.Y, roots) {
				found = true
			}
		}
	})
	return found
}

func mentionsRoot(p *Pass, e ast.Expr, roots map[types.Object]bool) bool {
	found := false
	inspectNoFuncLit(e, func(d ast.Node) {
		if id, ok := d.(*ast.Ident); ok {
			if obj := p.TypesInfo.Uses[id]; obj != nil && roots[obj] {
				found = true
			}
		}
	})
	return found
}

// rootVars collects the variable objects a size expression is derived
// from: constants drop out, and len/cap subexpressions are treated as
// memory-backed (the bytes already exist, so the size cannot lie).
func rootVars(p *Pass, e ast.Expr) map[types.Object]bool {
	roots := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch builtinName(p.TypesInfo, n) {
			case "len", "cap":
				return false // sized by memory that exists
			}
		case *ast.Ident:
			obj := p.TypesInfo.Uses[n]
			if obj == nil {
				obj = p.TypesInfo.Defs[n]
			}
			if v, ok := obj.(*types.Var); ok {
				roots[v] = true
			}
		}
		return true
	})
	return roots
}

// clamped reports whether the size expression is a min/max builtin call
// — an inline clamp that carries its own bound.
func clamped(p *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch builtinName(p.TypesInfo, call) {
	case "min", "max":
		return true
	}
	return false
}
