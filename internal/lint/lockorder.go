package lint

// lockorder: deadlock prevention by declared lock ranks, checked with a
// forward dataflow over the CFG. Every mutex that participates in
// nesting carries //repro:lockclass <name> <rank> (on the field, or on
// an accessor function returning it); the analyzer computes the set of
// classes held at every acquire site and records a class-level
// acquisition edge held → acquired for each. An edge is legal only if
// the rank strictly increases; a rank inversion, a same-class re-acquire
// while an instance is held, or an edge that closes a cycle in the
// acquisition graph is reported at its first site.
//
// The held-set analysis is flow-sensitive (an Unlock before the next
// Lock removes the class — the WAL's group-commit hand-off acquires its
// two mutexes strictly sequentially and must not be flagged) and models
// the repository's idioms:
//
//   - x.mu.Lock()/RLock()/Unlock()/RUnlock() on an annotated field;
//   - sh.lock()/sh.unlock() seqlock wrappers: a method named
//     lock/unlock/rlock/runlock on a type with exactly one annotated
//     mutex field acquires/releases that field's class;
//   - st := s.stripe(k); st.Lock(): a local assigned from a //repro:lockclass
//     accessor function (or from &classedField / classedArray[i])
//     carries the class;
//   - deferred unlocks do NOT release (the lock is held to function
//     exit), which is exactly what makes Reset's mu-held-then-smu
//     acquisition an edge;
//   - calls of same-package functions add their transitively-acquired
//     classes as edges from everything currently held.
//
// Classes are per-package (ranks live with the fields), and the rank
// bands are a module-wide convention documented in ANNOTATIONS.md so
// cross-package nesting — DurableMap(10,20) → cmap shard(30) → WAL
// (40,50) → wire server(60) — stays increasing by construction.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/cfg"
)

// LockOrder is the lockorder analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "//repro:lockclass ranks strictly increase along every lock-acquisition edge; no cycles",
	Run:  runLockOrder,
}

// lockClass is one declared class.
type lockClass struct {
	name string
	rank int
	id   int // bit position in held-set masks
}

type lockEdge struct {
	from, to int
	pos      token.Pos
}

func runLockOrder(p *Pass) error {
	lc := collectLockClasses(p)
	if len(lc.classes) == 0 {
		return nil
	}
	decls := funcDecls(p)
	acq := acquireSummaries(p, lc, decls)

	// Record acquisition edges across every function at dataflow fixpoint.
	edges := map[[2]int]token.Pos{}
	for _, fd := range sortedDecls(decls) {
		if fd.Body == nil {
			continue
		}
		recordEdges(p, fd, lc, decls, acq, edges)
	}

	reportLockEdges(p, lc, edges)
	return nil
}

// classIndex resolves annotated mutex fields and accessor functions.
type classIndex struct {
	classes []*lockClass
	byName  map[string]*lockClass
	fields  map[*types.Var]*lockClass  // annotated mutex fields (Origin)
	funcs   map[*types.Func]*lockClass // annotated accessor functions
	// lockMethods maps a lock()/unlock()-style wrapper method to its
	// receiver's single annotated class (true = acquire, false = release).
	lockMethods map[*types.Func]lockMethod
}

type lockMethod struct {
	class   *lockClass
	acquire bool
}

func (ci *classIndex) intern(p *Pass, name string, rank int, pos token.Pos) *lockClass {
	if c, ok := ci.byName[name]; ok {
		if c.rank != rank {
			p.Reportf(pos, "//repro:lockclass %s declared with rank %d here but rank %d elsewhere — one class, one rank", name, rank, c.rank)
		}
		return c
	}
	c := &lockClass{name: name, rank: rank, id: len(ci.classes)}
	ci.classes = append(ci.classes, c)
	ci.byName[name] = c
	return c
}

func collectLockClasses(p *Pass) *classIndex {
	ci := &classIndex{
		byName:      map[string]*lockClass{},
		fields:      map[*types.Var]*lockClass{},
		funcs:       map[*types.Func]*lockClass{},
		lockMethods: map[*types.Func]lockMethod{},
	}
	dirs := p.Directives()
	// Annotated struct fields.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				dir, ok := dirs.Field(field, DirLockClass)
				if !ok {
					continue
				}
				name, rank, ok := parseLockClassArgs(dir.Args)
				if !ok {
					p.Reportf(dir.Pos, "//repro:lockclass wants `<name> <rank>`, got %q", dir.Args)
					continue
				}
				c := ci.intern(p, name, rank, dir.Pos)
				for _, id := range field.Names {
					if v, ok := p.TypesInfo.Defs[id].(*types.Var); ok {
						ci.fields[v.Origin()] = c
					}
				}
			}
			return true
		})
	}
	// Annotated accessor functions (e.g. stripe() returning &s.stripes[i]).
	for fn, fd := range p.FuncDecls() {
		if dir, ok := dirs.Func(fd, DirLockClass); ok {
			name, rank, ok := parseLockClassArgs(dir.Args)
			if !ok {
				p.Reportf(dir.Pos, "//repro:lockclass wants `<name> <rank>`, got %q", dir.Args)
				continue
			}
			ci.funcs[fn.Origin()] = ci.intern(p, name, rank, dir.Pos)
		}
	}
	// lock()/unlock() wrapper methods on single-class receivers.
	for fn, fd := range p.FuncDecls() {
		if fd.Recv == nil {
			continue
		}
		var acquire bool
		switch fd.Name.Name {
		case "lock", "Lock", "rlock", "RLock":
			acquire = true
		case "unlock", "Unlock", "runlock", "RUnlock":
			acquire = false
		default:
			continue
		}
		c := soleClassOfReceiver(p, fn, ci)
		if c != nil {
			ci.lockMethods[fn.Origin()] = lockMethod{class: c, acquire: acquire}
		}
	}
	return ci
}

func parseLockClassArgs(args string) (string, int, bool) {
	fields := strings.Fields(args)
	if len(fields) != 2 {
		return "", 0, false
	}
	rank, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", 0, false
	}
	return fields[0], rank, true
}

// soleClassOfReceiver returns the receiver type's annotated class if it
// has exactly one annotated mutex field.
func soleClassOfReceiver(p *Pass, fn *types.Func, ci *classIndex) *lockClass {
	recv := fn.Signature().Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var found *lockClass
	for i := 0; i < st.NumFields(); i++ {
		if c, ok := ci.fields[st.Field(i).Origin()]; ok {
			if found != nil && found != c {
				return nil // ambiguous: two classes on one receiver
			}
			found = c
		}
	}
	return found
}

// lockEvent is one acquire or release resolved at a call site.
type lockEvent struct {
	class   *lockClass
	acquire bool
	// summary holds transitively-acquired classes for plain in-package
	// calls (class == nil then).
	summary uint64
	pos     token.Pos
}

// resolveLockEvent classifies a call expression, using the per-function
// local alias map (locals) for `st := s.stripe(k); st.Lock()` shapes.
func resolveLockEvent(p *Pass, call *ast.CallExpr, ci *classIndex, locals map[types.Object]*lockClass, decls map[*types.Func]*ast.FuncDecl, acq map[*ast.FuncDecl]uint64) (lockEvent, bool) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		isAcq := name == "Lock" || name == "RLock"
		isRel := name == "Unlock" || name == "RUnlock"
		if isAcq || isRel {
			if c := classOfMutexExpr(p, sel.X, ci, locals); c != nil {
				return lockEvent{class: c, acquire: isAcq, pos: call.Pos()}, true
			}
		}
	}
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil || fn.Pkg() != p.Pkg {
		return lockEvent{}, false
	}
	if lm, ok := ci.lockMethods[fn.Origin()]; ok {
		return lockEvent{class: lm.class, acquire: lm.acquire, pos: call.Pos()}, true
	}
	if fd, ok := decls[fn.Origin()]; ok {
		if sum := acq[fd]; sum != 0 {
			return lockEvent{summary: sum, pos: call.Pos()}, true
		}
	}
	return lockEvent{}, false
}

// classOfMutexExpr resolves the expression a Lock/Unlock is called on:
// a selector ending in an annotated field, an index into an annotated
// array field, or a local carrying a class through the alias map.
func classOfMutexExpr(p *Pass, e ast.Expr, ci *classIndex, locals map[types.Object]*lockClass) *lockClass {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := p.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			if c, ok := ci.fields[v.Origin()]; ok {
				return c
			}
		}
	case *ast.IndexExpr: // s.stripes[i].Lock()
		return classOfMutexExpr(p, e.X, ci, locals)
	case *ast.Ident:
		obj := p.TypesInfo.Uses[e]
		if obj == nil {
			return nil
		}
		return locals[obj]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return classOfMutexExpr(p, e.X, ci, locals)
		}
	}
	return nil
}

// localAliases scans a body once for `x := <class-carrying expr>`
// assignments: address-of / index of an annotated field, or a call of an
// annotated accessor. Flow-insensitive — good enough for the
// take-the-stripe-then-lock-it idiom.
func localAliases(p *Pass, fd *ast.FuncDecl, ci *classIndex) map[types.Object]*lockClass {
	locals := map[types.Object]*lockClass{}
	inspectNoFuncLit(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.TypesInfo.Defs[id]
			if obj == nil {
				obj = p.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if c := classOfValueExpr(p, as.Rhs[i], ci, locals); c != nil {
				locals[obj] = c
			}
		}
	})
	return locals
}

func classOfValueExpr(p *Pass, e ast.Expr, ci *classIndex, locals map[types.Object]*lockClass) *lockClass {
	switch e := unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return classOfMutexExpr(p, e.X, ci, locals)
		}
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.Ident:
		return classOfMutexExpr(p, e.(ast.Expr), ci, locals)
	case *ast.CallExpr:
		if fn := calleeFunc(p.TypesInfo, e); fn != nil {
			if c, ok := ci.funcs[fn.Origin()]; ok {
				return c
			}
		}
	}
	return nil
}

// acquireSummaries computes, to fixpoint, the set of classes each
// package function may acquire directly or through in-package calls.
func acquireSummaries(p *Pass, ci *classIndex, decls map[*types.Func]*ast.FuncDecl) map[*ast.FuncDecl]uint64 {
	acq := map[*ast.FuncDecl]uint64{}
	for changed := true; changed; {
		changed = false
		for _, fd := range sortedDecls(decls) {
			if fd.Body == nil {
				continue
			}
			locals := localAliases(p, fd, ci)
			var sum uint64
			inspectNoFuncLit(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				ev, ok := resolveLockEvent(p, call, ci, locals, decls, acq)
				if !ok {
					return
				}
				if ev.class != nil && ev.acquire {
					sum |= 1 << ev.class.id
				}
				sum |= ev.summary
			})
			if sum != acq[fd] {
				acq[fd] = sum
				changed = true
			}
		}
	}
	return acq
}

// recordEdges runs the held-set dataflow over fd and records a
// held → acquired edge for every acquisition made with locks held.
func recordEdges(p *Pass, fd *ast.FuncDecl, ci *classIndex, decls map[*types.Func]*ast.FuncDecl, acq map[*ast.FuncDecl]uint64, edges map[[2]int]token.Pos) {
	g := p.CFG(fd)
	if g == nil {
		return
	}
	locals := localAliases(p, fd, ci)

	// transfer applies one node's lock events to a held mask; when
	// record is set, acquisition edges land in the edges map.
	apply := func(n ast.Node, held uint64, record bool) uint64 {
		deferred := false
		if _, ok := n.(*ast.DeferStmt); ok {
			deferred = true
		}
		inspectNoFuncLit(n, func(d ast.Node) {
			call, ok := d.(*ast.CallExpr)
			if !ok {
				return
			}
			ev, ok := resolveLockEvent(p, call, ci, locals, decls, acq)
			if !ok {
				return
			}
			switch {
			case ev.class != nil && ev.acquire:
				if record {
					for _, c := range ci.classes {
						if held&(1<<c.id) != 0 {
							key := [2]int{c.id, ev.class.id}
							if _, seen := edges[key]; !seen {
								edges[key] = ev.pos
							}
						}
					}
				}
				held |= 1 << ev.class.id
			case ev.class != nil && !ev.acquire:
				if !deferred {
					held &^= 1 << ev.class.id // a deferred unlock holds to exit
				}
			case ev.summary != 0:
				if record {
					for _, c := range ci.classes {
						if held&(1<<c.id) == 0 {
							continue
						}
						for _, t := range ci.classes {
							if ev.summary&(1<<t.id) != 0 {
								key := [2]int{c.id, t.id}
								if _, seen := edges[key]; !seen {
									edges[key] = ev.pos
								}
							}
						}
					}
				}
			}
		})
		return held
	}

	in := cfg.Forward(g, cfg.ForwardProblem[uint64]{
		Entry: 0,
		Init:  func(*cfg.Block) uint64 { return 0 },
		Join:  func(a, b uint64) uint64 { return a | b },
		Equal: func(a, b uint64) bool { return a == b },
		Transfer: func(b *cfg.Block, held uint64) uint64 {
			for _, n := range b.Nodes {
				held = apply(n, held, false)
			}
			return held
		},
	})
	// One recording pass with the fixpoint in-states.
	for _, b := range g.Blocks {
		if !g.Reachable(b) {
			continue
		}
		held := in[b.Index]
		for _, n := range b.Nodes {
			held = apply(n, held, true)
		}
	}
}

// reportLockEdges checks every recorded edge for rank inversions and
// cycle closure.
func reportLockEdges(p *Pass, ci *classIndex, edges map[[2]int]token.Pos) {
	keys := make([][2]int, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return edges[keys[i]] < edges[keys[j]] })

	adj := map[int][]int{}
	for _, k := range keys {
		from, to := ci.classes[k[0]], ci.classes[k[1]]
		switch {
		case from == to:
			p.Reportf(edges[k], "lock class %s (rank %d) acquired while an instance of the same class is already held — ranks must strictly increase", to.name, to.rank)
		case from.rank >= to.rank:
			p.Reportf(edges[k], "lock order inversion: %s (rank %d) acquired while holding %s (rank %d) — ranks must strictly increase", to.name, to.rank, from.name, from.rank)
		}
		adj[k[0]] = append(adj[k[0]], k[1])
	}

	// Report each cycle once, at the edge that closes it.
	for _, k := range keys {
		if k[0] == k[1] {
			continue // self-edges already reported
		}
		if path := findPath(adj, k[1], k[0]); path != nil {
			names := make([]string, 0, len(path)+1)
			for _, id := range append(path, k[1]) {
				names = append(names, ci.classes[id].name)
			}
			p.Reportf(edges[k], "lock classes form an acquisition cycle: %s", strings.Join(names, " -> "))
			return // one cycle report per package keeps the signal readable
		}
	}
}

// findPath returns a path from src to dst in adj, or nil.
func findPath(adj map[int][]int, src, dst int) []int {
	seen := map[int]bool{src: true}
	var dfs func(cur int, path []int) []int
	dfs = func(cur int, path []int) []int {
		if cur == dst {
			return append(path, cur)
		}
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				if r := dfs(next, append(path, cur)); r != nil {
					return r
				}
			}
		}
		return nil
	}
	return dfs(src, nil)
}
