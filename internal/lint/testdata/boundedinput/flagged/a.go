// Package a exercises boundedinput: decoders that allocate (or
// loop-append) from a decoded size before any bound check — the
// lying-length-prefix amplification shapes.
package a

const maxFrame = 1 << 20

// readFrame trusts the length prefix it just decoded: one lying frame
// forces an arbitrary allocation.
//
//repro:boundedinput
func readFrame(hdr []byte) []byte {
	n := int(hdr[0]) | int(hdr[1])<<8
	buf := make([]byte, n) // want `make sized by n in //repro:boundedinput readFrame has no dominating bound check`
	return buf
}

// lateCheck allocates first and bounds second — the ordering is the
// whole bug.
//
//repro:boundedinput
func lateCheck(hdr []byte) []byte {
	n := int(hdr[0])
	buf := make([]byte, n) // want `make sized by n in //repro:boundedinput lateCheck has no dominating bound check`
	if n > maxFrame {
		return nil
	}
	return buf
}

// wrongGuard bounds a different decoded value than the one it
// allocates from.
//
//repro:boundedinput
func wrongGuard(hdr []byte, limit int) []byte {
	n := int(hdr[0])
	m := int(hdr[1])
	if m > limit {
		return nil
	}
	return make([]byte, n) // want `make sized by n in //repro:boundedinput wrongGuard has no dominating bound check`
}

// branchOnly bounds the size on one path but allocates on both: the
// check does not dominate the allocation.
//
//repro:boundedinput
func branchOnly(hdr []byte, strict bool) []byte {
	n := int(hdr[0])
	if strict {
		if n > maxFrame {
			return nil
		}
	}
	return make([]byte, n) // want `make sized by n in //repro:boundedinput branchOnly has no dominating bound check`
}

// parseList appends once per decoded count with no bound on the count —
// the loop's own trip test is made of the same lying value and does not
// count as a check.
//
//repro:boundedinput
func parseList(data []byte, count int) [][]byte {
	var out [][]byte
	for i := 0; i < count; i++ {
		out = append(out, data[:1]) // want `append inside .for i < count. in //repro:boundedinput parseList grows by a decoded count`
	}
	return out
}

// capOnly bounds only the second size argument; the first still comes
// straight off the wire.
//
//repro:boundedinput
func capOnly(hdr []byte) []byte {
	n := int(hdr[0])
	return make([]byte, n, 64) // want `make sized by n in //repro:boundedinput capOnly has no dominating bound check`
}
