// Package clean holds the check-before-allocate decoder shapes: every
// wire-derived size is bounded before memory follows it. Any
// boundedinput finding here is a false positive.
package clean

const (
	maxFrame = 1 << 20
	maxKeys  = 1024
	chunk    = 4096
)

// readFrame is the canonical shape: reject the lying prefix, then
// allocate.
//
//repro:boundedinput
func readFrame(hdr []byte) []byte {
	n := int(hdr[0]) | int(hdr[1])<<8
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// parseList bounds the decoded count before the counted append loop.
//
//repro:boundedinput
func parseList(data []byte, count int) [][]byte {
	if count > maxKeys {
		return nil
	}
	var out [][]byte
	for i := 0; i < count; i++ {
		out = append(out, data[:1])
	}
	return out
}

// readChunked allocates a clamped capacity and grows by spread appends
// whose source is itself bounded — the amortized-read shape.
//
//repro:boundedinput
func readChunked(data []byte, n int) []byte {
	if n > maxFrame {
		return nil
	}
	buf := make([]byte, 0, min(n, chunk))
	tmp := make([]byte, chunk)
	for len(buf) < n {
		k := copy(tmp, data)
		buf = append(buf, tmp[:k]...)
	}
	return buf
}

// memorySized allocations answer to bytes that already exist: len/cap
// cannot lie.
//
//repro:boundedinput
func memorySized(src []byte) []byte {
	dst := make([]byte, len(src))
	copy(dst, src)
	return dst
}

// constSized allocations carry no decoded value at all.
//
//repro:boundedinput
func constSized() []byte {
	return make([]byte, 64)
}

// rangeAppend grows by one element per element of an existing slice —
// the growth is bounded by memory that exists.
//
//repro:boundedinput
func rangeAppend(src []byte) []int {
	var out []int
	for _, b := range src {
		out = append(out, int(b))
	}
	return out
}

// lowerBoundGuard uses the mirrored comparison order.
//
//repro:boundedinput
func lowerBoundGuard(hdr []byte) []byte {
	n := int(hdr[0])
	if maxFrame < n {
		return nil
	}
	return make([]byte, n)
}
