// Package a holds seqatomic violations: plain accesses to seqguarded
// words that a lock-free seqlock reader observes concurrently.
package a

import "sync/atomic"

// view models a seqlock-published table: writers mutate words and bump
// gen; readers load words between two gen loads and retry on mismatch.
type view struct {
	//repro:seqguarded
	words []uint32
	gen   uint32 //repro:seqguarded
	name  string
}

// torn is the bug the race detector cannot see: the plain load of
// v.words[i] races the writer's store, and even though a torn value is
// discarded when the generation check fails, the plain load itself is
// undefined behaviour under the Go memory model. Under -race the
// generation check makes almost every interleaving look synchronized,
// so this passes `go test -race` and still miscompiles legally.
func torn(v *view, i int) (uint32, bool) {
	g1 := atomic.LoadUint32(&v.gen)
	x := v.words[i] // want `plain access to seqguarded field words`
	g2 := atomic.LoadUint32(&v.gen)
	if g1 != g2 || g1%2 != 0 {
		return 0, false // torn value discarded; the race already happened
	}
	return x, true
}

func plainStore(v *view, i int, x uint32) {
	v.words[i] = x // want `plain access to seqguarded field words`
	v.gen++        // want `plain access to seqguarded field gen`
}

// plainName is fine: name is not guarded.
func plainName(v *view) string { return v.name }
