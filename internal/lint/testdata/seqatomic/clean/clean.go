// Package clean holds the blessed access shapes for seqguarded fields:
// nothing here may be flagged.
package clean

import "sync/atomic"

type view struct {
	//repro:seqguarded
	words []uint32
	gen   uint32 //repro:seqguarded
}

// loadWord is a blessed accessor; its own plain handling of the pointer
// is exempt.
//
//repro:seqaccessor
func loadWord(p *uint32) uint32 { return atomic.LoadUint32(p) }

func read(v *view, i int) (uint32, bool) {
	g1 := atomic.LoadUint32(&v.gen)
	x := loadWord(&v.words[i])
	g2 := atomic.LoadUint32(&v.gen)
	return x, g1 == g2 && g1%2 == 0
}

func write(v *view, i int, x uint32) {
	atomic.AddUint32(&v.gen, 1)
	atomic.StoreUint32(&v.words[i], x)
	atomic.AddUint32(&v.gen, 1)
}

// construct runs before the view is published to readers.
//
//repro:seqexempt
func construct(n int) *view {
	v := &view{words: make([]uint32, n)}
	v.words[0] = 1
	return v
}

// headers reads only the immutable slice header: len, cap, and a
// single-variable range never touch the guarded elements.
func headers(v *view) int {
	n := 0
	for i := range v.words {
		n += i
	}
	return n + len(v.words) + cap(v.words)
}
