// Package a exercises lockorder: rank inversions between declared lock
// classes, same-class double acquisition, inversions reached through
// in-package helpers, deferred unlocks holding to function exit, and a
// three-class acquisition cycle.
package a

import "sync"

// Two classes with the WAL's shape: the connection table outranks the
// log, so log-then-table is the declared order... and inverted below.
type walLog struct {
	mu sync.Mutex //repro:lockclass wal 10
}

type server struct {
	mu  sync.Mutex //repro:lockclass conn 20
	wal walLog
}

// invert takes the low-rank log lock while holding the high-rank
// connection lock.
func (s *server) invert() {
	s.mu.Lock()
	s.wal.mu.Lock() // want `lock order inversion: wal \(rank 10\) acquired while holding conn \(rank 20\)`
	s.wal.mu.Unlock()
	s.mu.Unlock()
}

// One class, two instances: stripe-to-stripe ordering cannot come from
// ranks, so holding one while taking another is flagged.
type stripe struct {
	mu sync.Mutex //repro:lockclass stripe 30
}

type pair struct {
	a, b stripe
}

func (p *pair) both() {
	p.a.mu.Lock()
	p.b.mu.Lock() // want `lock class stripe \(rank 30\) acquired while an instance of the same class is already held`
	p.b.mu.Unlock()
	p.a.mu.Unlock()
}

// An inversion hidden behind an in-package helper: the caller holds the
// high class, the helper acquires the low one.
type lowBox struct {
	mu sync.Mutex //repro:lockclass slow 40
}

type highBox struct {
	mu sync.Mutex //repro:lockclass shigh 50
}

func helperLock(t *lowBox) {
	t.mu.Lock()
	t.mu.Unlock()
}

func outer(s *highBox, t *lowBox) {
	s.mu.Lock()
	helperLock(t) // want `lock order inversion: slow \(rank 40\) acquired while holding shigh \(rank 50\)`
	s.mu.Unlock()
}

// A deferred unlock holds its class to function exit, so the later
// low-rank acquire still happens under it.
type dLow struct {
	mu sync.Mutex //repro:lockclass dlow 60
}

type dHigh struct {
	mu sync.Mutex //repro:lockclass dhigh 70
}

func deferredHold(h *dHigh, l *dLow) {
	h.mu.Lock()
	defer h.mu.Unlock()
	l.mu.Lock() // want `lock order inversion: dlow \(rank 60\) acquired while holding dhigh \(rank 70\)`
	l.mu.Unlock()
}

// Three classes whose pairwise edges each look locally plausible but
// close a cycle: ra -> rb -> rc -> ra. The closing edge is also a rank
// inversion; the cycle is reported once, at its earliest edge.
type ringA struct {
	mu sync.Mutex //repro:lockclass ra 1
}

type ringB struct {
	mu sync.Mutex //repro:lockclass rb 2
}

type ringC struct {
	mu sync.Mutex //repro:lockclass rc 3
}

func ring1(x *ringA, y *ringB) {
	x.mu.Lock()
	y.mu.Lock() // want `lock classes form an acquisition cycle: rb -> rc -> ra -> rb`
	y.mu.Unlock()
	x.mu.Unlock()
}

func ring2(y *ringB, z *ringC) {
	y.mu.Lock()
	z.mu.Lock()
	z.mu.Unlock()
	y.mu.Unlock()
}

func ring3(z *ringC, x *ringA) {
	z.mu.Lock()
	x.mu.Lock() // want `lock order inversion: ra \(rank 1\) acquired while holding rc \(rank 3\)`
	x.mu.Unlock()
	z.mu.Unlock()
}
