// Package clean holds the legal locking shapes: rank-increasing
// nesting, strictly sequential acquisition of unordered classes (the
// group-commit hand-off), stripe locks reached through an annotated
// accessor, and lock()/unlock() wrapper methods. Any lockorder finding
// here is a false positive.
package clean

import "sync"

type walLog struct {
	mu  sync.Mutex //repro:lockclass walappend 40
	smu sync.Mutex //repro:lockclass walcommit 50
}

// nested acquires in declared order: 40 then 50.
func (w *walLog) nested() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.smu.Lock()
	w.smu.Unlock()
}

// handoff is the group-commit shape: the commit lock is taken, dropped,
// and only then the append lock — sequential, never nested, so no edge
// exists in either direction.
func (w *walLog) handoff() {
	w.smu.Lock()
	w.smu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
}

// Striped map: the directory lock is ordered before any stripe, and
// stripes are reached through the annotated accessor — the local
// carries the class to its Lock call.
type smap struct {
	mu      sync.RWMutex //repro:lockclass dir 10
	stripes [16]sync.Mutex
}

// stripeOf returns the ordering lock for a key.
//
//repro:lockclass stripe 20
func (s *smap) stripeOf(k uint64) *sync.Mutex {
	return &s.stripes[k%16]
}

func (s *smap) put(k uint64) {
	s.mu.RLock()
	st := s.stripeOf(k)
	st.Lock()
	st.Unlock()
	s.mu.RUnlock()
}

// Wrapper methods: a lock()/unlock() pair on a type with exactly one
// annotated mutex field acquires and releases that field's class.
type shard struct {
	mu sync.RWMutex //repro:lockclass shard 30
	n  int
}

func (sh *shard) lock()   { sh.mu.Lock() }
func (sh *shard) unlock() { sh.mu.Unlock() }

func (s *smap) apply(sh *shard) {
	s.mu.RLock()
	sh.lock()
	sh.n++
	sh.unlock()
	s.mu.RUnlock()
}

// retryLoop re-acquires the same class around a loop: the unlock on the
// back edge keeps the held set empty at the next acquire.
func (sh *shard) retryLoop(n int) {
	for i := 0; i < n; i++ {
		sh.lock()
		sh.n++
		sh.unlock()
	}
}
