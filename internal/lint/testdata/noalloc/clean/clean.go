// Package clean holds the alloc-free shapes noalloc must accept:
// amortized scratch appends, pointer-shaped boxing, capture-free
// literals, panic arguments, and suppressed deliberate allocations.
package clean

import "encoding/binary"

type writer struct {
	scratch []byte
}

// frame appends into caller-owned scratch: the append chain stays
// rooted in the receiver's field, so steady-state is alloc-free.
//
//repro:noalloc
func (w *writer) frame(payload []byte) []byte {
	buf := w.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	w.scratch = buf
	return buf
}

// appendInto appends into a destination the caller passed in.
//
//repro:noalloc
func appendInto(dst []byte, b byte) []byte {
	return append(dst, b)
}

// amortized grows its pool once on a miss; the suppression records the
// deliberate allocation.
//
//repro:noalloc
func amortized(pool *[]int, n int) []int {
	s := *pool
	if cap(s) < n {
		s = make([]int, n) //repro:allocok pool miss: grow once, reuse forever after
		*pool = s
	}
	return s[:n]
}

type codec interface{ id() int }

type handle struct{ n int }

func (h *handle) id() int { return h.n }

// pointerShaped boxes a pointer into an interface: the pointer fits in
// the interface word, no allocation.
//
//repro:noalloc
func pointerShaped(h *handle) codec {
	return h
}

// staticFn returns a capture-free literal: a static function value.
//
//repro:noalloc
func staticFn() func(int) int {
	return func(x int) int { return x * 2 }
}

// guard may build its panic message however it likes: a panicking hot
// path is already dead.
//
//repro:noalloc
func guard(i, n int, name string) {
	if i >= n {
		panic("index out of range in " + name)
	}
}

// passThrough forwards an existing slice to a variadic callee: s...
// passes the slice through without allocating a new one.
//
//repro:noalloc
func passThrough(xs []int) int {
	return variadicSum(xs...)
}

func variadicSum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
