// Package a exercises every allocating construct noalloc rejects.
package a

type big struct{ a, b, c uint64 }

type sink interface{ use() }

func (big) use() {}

func consume(s sink) { s.use() }

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//repro:noalloc
func builtins(n int) int {
	m := make([]byte, n) // want `make allocates`
	p := new(int)        // want `new allocates`
	s := []int{1, 2, 3}  // want `slice literal allocates`
	mp := map[int]int{}  // want `map literal allocates`
	var local []byte
	local = append(local, 1) // want `append to a function-local slice may allocate`
	return len(m) + *p + s[0] + len(mp) + len(local)
}

//repro:noalloc
func escapes() *big {
	return &big{1, 2, 3} // want `&composite literal escapes to the heap`
}

//repro:noalloc
func capture(seed int) func() int {
	counter := seed
	return func() int { // want `func literal captures "counter": the closure context allocates`
		counter++
		return counter
	}
}

//repro:noalloc
func spawn(done chan struct{}) {
	go close(done) // want `go statement allocates a goroutine`
}

//repro:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:noalloc
func toBytes(s string) []byte {
	return []byte(s) // want `string -> \[\]byte conversion allocates`
}

//repro:noalloc
func boxExplicit(v big) sink {
	return sink(v) // want `conversion of .*\bbig to interface .*\bsink boxes \(allocates\)`
}

//repro:noalloc
func boxImplicit(v big) {
	consume(v) // want `passing .*\bbig to interface parameter boxes \(allocates\)`
}

//repro:noalloc
func variadic() int {
	return sum(1, 2, 3) // want `variadic call allocates its argument slice`
}
