//repro:unsafeview byte views of pair; the gate is deliberately missing here

package a

import "unsafe"

type pair struct{ a, b uint64 }

// viewUngated sits in an allowlisted file but never proves pair
// pointer-free before viewing it.
func viewUngated(p *pair) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(p)), unsafe.Sizeof(*p)) // want `unsafe view in viewUngated is not dominated by a pointer-free gate`
}
