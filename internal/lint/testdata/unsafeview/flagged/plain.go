// Package a exercises unsafeview: views outside the audited allowlist
// and views with no dominating gate. This file is NOT annotated
// //repro:unsafeview, so any view in it is flagged.
package a

import "unsafe"

func addrOf(x *int) uintptr {
	return uintptr(unsafe.Pointer(x)) // want `unsafe\.Pointer in a file not annotated //repro:unsafeview`
}

// sizes uses only the compile-time-constant members, which are
// unrestricted anywhere.
func sizes(x int) uintptr {
	return unsafe.Sizeof(x) + unsafe.Alignof(x)
}
