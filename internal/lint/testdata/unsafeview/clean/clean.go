//repro:unsafeview in-place byte views of pointer-free structs, gated by checkPointerFree

// Package clean holds the sound unsafe-view shapes: every view is in an
// allowlisted file and dominated by a gate, either called lexically
// first or recorded with //repro:gated.
package clean

import (
	"reflect"
	"unsafe"
)

type pair struct{ a, b uint64 }

// checkPointerFree is the gate: it rejects pointerful kinds before any
// byte view is taken.
//
//repro:unsafegate
func checkPointerFree(t reflect.Type) {
	switch t.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Chan, reflect.Slice,
		reflect.String, reflect.Interface, reflect.Func, reflect.UnsafePointer:
		panic("pointerful type " + t.String())
	}
}

// bytesOf calls the gate before its first view.
func bytesOf(p *pair) []byte {
	checkPointerFree(reflect.TypeOf(*p))
	return unsafe.Slice((*byte)(unsafe.Pointer(p)), unsafe.Sizeof(*p))
}

// load's gate ran at construction time; the annotation records where.
//
//repro:gated checkPointerFree ran in bytesOf before any serialized pair exists
func load(b []byte) pair {
	return *(*pair)(unsafe.Pointer(unsafe.SliceData(b)))
}
