// Package a exercises digestflow: digest-carried paths that
// re-evaluate a keyed hash instead of re-deriving from the stored
// digest.
package a

// digest evaluates the keyed hash for a key.
//
//repro:digestsource
func digest(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

type table struct {
	slots []uint64
}

// place receives the stored digest and must derive the slot from it
// alone — hashing the key again would re-place with a different hasher
// after a snapshot reload.
//
//repro:digestcarried
func (t *table) place(k, d uint64) {
	i := digest(k) % uint64(len(t.slots)) // want `//repro:digestcarried place re-evaluates a keyed hash \(digest\)`
	t.slots[i] = d
}

// migrate reaches a hash evaluation through a same-package helper.
//
//repro:digestcarried
func (t *table) migrate(keys []uint64) {
	for _, k := range keys {
		t.rehashInto(k)
	}
}

func (t *table) rehashInto(k uint64) {
	i := digest(k) % uint64(len(t.slots)) // want `keyed hash evaluation \(digest\) in rehashInto is reachable from //repro:digestcarried migrate`
	t.slots[i] = k
}

type store struct {
	//repro:digestsource
	hash func(uint64) uint64
	data []uint64
}

// reload hashes through the stored hasher field — still a re-hash.
//
//repro:digestcarried
func (s *store) reload(k uint64) uint64 {
	return s.hash(k) // want `//repro:digestcarried reload re-evaluates a keyed hash \(hash\)`
}
