// Package clean holds the digest-discipline shapes digestflow must
// accept: pure re-derivation, a suppressed deliberate verification
// re-hash, and free hashing outside digest-carried paths.
package clean

//repro:digestsource
func digest(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

type table struct {
	slots []uint64
}

// place derives everything from the stored digest: the double-hashing
// probe (d + i*odd(d)) needs no key at any geometry.
//
//repro:digestcarried
func (t *table) place(d uint64) {
	step := d>>33 | 1
	i := (d + step) % uint64(len(t.slots))
	t.slots[i] = d
}

// verify re-hashes deliberately, once, to detect a mismatched hasher at
// snapshot-load time; the suppression records why.
//
//repro:digestcarried
func (t *table) verify(k, d uint64) bool {
	return digest(k) == d //repro:rehash-ok one-time wrong-hasher detection at load
}

// ingest is the front door: not digest-carried, it hashes freely and
// hands the digest down.
func (t *table) ingest(k uint64) {
	t.place(digest(k))
}
