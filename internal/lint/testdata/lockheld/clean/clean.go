// Package clean holds the lock-discipline shapes lockheld must accept:
// a lexical acquire before the call, obligation propagation between
// requires-lock functions, and a //repro:locked assertion.
package clean

import "sync"

type shard struct {
	mu    sync.Mutex
	items map[uint64]uint64
}

//repro:requires-lock
func (s *shard) growLocked() {
	s.items[0] = uint64(len(s.items))
}

// rebalanceLocked propagates the obligation outward: it is itself
// requires-lock, so calling growLocked is fine.
//
//repro:requires-lock
func (s *shard) rebalanceLocked() {
	s.growLocked()
}

// put acquires the lock lexically before the call.
func (s *shard) put(k, v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
	s.rebalanceLocked()
}

// onEach asserts the lock is held on entry by a non-lexical means.
//
//repro:locked invoked only from iterate, which holds s.mu across the walk
func (s *shard) onEach() {
	s.growLocked()
}

func (s *shard) iterate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEach()
}
