// Package a exercises lockheld: requires-lock helpers reached from
// callers that never visibly take the lock.
package a

import "sync"

type shard struct {
	mu    sync.Mutex
	items map[uint64]uint64
}

// growLocked mutates shard state that only mu serializes.
//
//repro:requires-lock
func (s *shard) growLocked() {
	s.items[0] = uint64(len(s.items))
}

// putNoLock reaches growLocked without ever acquiring the lock.
func (s *shard) putNoLock(k, v uint64) {
	s.items[k] = v
	s.growLocked() // want `call of //repro:requires-lock growLocked from putNoLock`
}

// lateLock acquires the lock only after the call that needed it.
func (s *shard) lateLock(k uint64) {
	s.growLocked() // want `call of //repro:requires-lock growLocked from lateLock`
	s.mu.Lock()
	s.items[k] = 0
	s.mu.Unlock()
}
