// Package clean holds the post-fix durability shapes: sticky fsync
// errors recorded (or consulted) on every failure path, tmp files
// removed before a failed publish returns, and success acks dominated
// by the durable op or a poison check. Any fsyncorder finding here is a
// false positive.
package clean

import (
	"os"
	"sync"
)

const headerSize = 16

type file interface {
	//repro:durable
	Sync() error
	//repro:durable
	Truncate(size int64) error
	//repro:durable
	Seek(offset int64, whence int) (int64, error)
}

type log struct {
	mu       sync.Mutex
	smu      sync.Mutex
	f        file
	seq      uint64
	durable  uint64
	writeErr error
	syncErr  error
}

// Sync is the fixed shape: the fsync error is recorded sticky before it
// can reach a return, and an already-poisoned log keeps reporting the
// old error instead of claiming fresh durability.
//
//repro:poisons syncErr
func (w *log) Sync() error {
	w.mu.Lock()
	seq := w.seq
	w.mu.Unlock()
	err := w.f.Sync()
	w.smu.Lock()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
	} else if w.syncErr != nil {
		err = w.syncErr
	} else if seq > w.durable {
		w.durable = seq
	}
	w.smu.Unlock()
	return err
}

// Reset poisons on every failure and heals only after the truncated log
// is verifiably empty on disk.
//
//repro:poisons writeErr syncErr
func (w *log) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(headerSize); err != nil {
		w.writeErr = err
		return err
	}
	if _, err := w.f.Seek(headerSize, 0); err != nil {
		w.writeErr = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.smu.Lock()
		if w.syncErr == nil {
			w.syncErr = err
		}
		w.smu.Unlock()
		return err
	}
	w.seq = 0
	w.writeErr = nil
	w.smu.Lock()
	w.durable = 0
	w.syncErr = nil
	w.smu.Unlock()
	return nil
}

// waitDurable is the group-commit follower shape: the leader's flush
// error is poisoned under the branch, and the shared return consults
// the sticky field first.
//
//repro:poisons syncErr
func (w *log) waitDurable(seq uint64) error {
	w.smu.Lock()
	defer w.smu.Unlock()
	for w.syncErr == nil && w.durable < seq {
		err := w.f.Sync()
		if err != nil {
			if w.syncErr == nil {
				w.syncErr = err
			}
		} else {
			w.durable = seq
		}
	}
	if err := w.syncErr; err != nil {
		return err
	}
	return nil
}

// publish is the fixed Checkpoint tail: the tmp is removed before a
// failed rename returns, so it cannot outlive the error.
//
//repro:poisons os.Remove
func publish(tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// flushAck delegates the durability work to Sync, which carries its own
// //repro:poisons contract — the ack is dominated by the delegation.
//
//repro:poisons syncErr
func (w *log) flushAck() error {
	if err := w.Sync(); err != nil {
		return err
	}
	return nil
}
