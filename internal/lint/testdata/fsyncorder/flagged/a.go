// Package a exercises fsyncorder: the two pre-PR-8 durability-ordering
// bugs (an un-sticky fsync error and a snapshot.tmp that outlives a
// failed rename), pinned in the exact shapes the fixes replaced, plus
// the discard/direct-return/inline-consumption shapes that skip the
// poison protocol entirely.
package a

import (
	"os"
	"sync"
)

const headerSize = 16

// file is the walFile seam: durability ops are annotated per method.
type file interface {
	//repro:durable
	Sync() error
	//repro:durable
	Truncate(size int64) error
	//repro:durable
	Seek(offset int64, whence int) (int64, error)
}

type log struct {
	mu       sync.Mutex
	smu      sync.Mutex
	f        file
	buf      []byte
	seq      uint64
	durable  uint64
	writeErr error
	syncErr  error
}

// Sync is the pre-fix WAL.Sync: a failed fsync is returned without
// being recorded, so a later Sync with nothing new written reports
// success over pages the kernel may have dropped.
//
//repro:poisons syncErr
func (w *log) Sync() error {
	w.mu.Lock()
	seq := w.seq
	w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err // want `error from //repro:durable Sync can reach this return with no //repro:poisons action`
	}
	w.smu.Lock()
	if seq > w.durable {
		w.durable = seq
	}
	w.smu.Unlock()
	return nil
}

// Reset is the pre-fix WAL.Reset: a failed truncate, seek or fsync
// leaves counters that no longer match the file, and nothing records
// the mismatch.
//
//repro:poisons writeErr syncErr
func (w *log) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(headerSize); err != nil {
		return err // want `error from //repro:durable Truncate can reach this return`
	}
	if _, err := w.f.Seek(headerSize, 0); err != nil {
		return err // want `error from //repro:durable Seek can reach this return`
	}
	if err := w.f.Sync(); err != nil {
		return err // want `error from //repro:durable Sync can reach this return`
	}
	w.seq = 0
	w.durable = 0
	return nil
}

// publish is the pre-fix Checkpoint tail: a failed rename returns with
// the fully-written tmp still in the directory.
//
//repro:poisons os.Remove
func publish(tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		return err // want `error from //repro:durable os.Rename can reach this return`
	}
	return nil
}

// flush hands the durable error straight to the caller — no poison
// action can ever run on its failure path.
//
//repro:poisons syncErr
func (w *log) flush() error {
	return w.f.Sync() // want `error of //repro:durable Sync is returned directly`
}

// drop discards the durable error outright.
//
//repro:poisons syncErr
func (w *log) drop() {
	w.f.Sync() // want `error of //repro:durable Sync is discarded`
}

// blank discards it into the blank identifier.
//
//repro:poisons syncErr
func (w *log) blank() {
	_ = w.f.Sync() // want `error of //repro:durable Sync is discarded`
}

// inline consumes the error inside an expression, so no variable exists
// for the failure path to poison through.
//
//repro:poisons syncErr
func (w *log) inline() bool {
	return w.f.Sync() == nil // want `error of //repro:durable Sync is consumed inline`
}

// ackUnsynced handles its durable error correctly but can acknowledge
// success on a path that never synced nor consulted the sticky error.
//
//repro:poisons syncErr
func (w *log) ackUnsynced(force bool) error {
	if force {
		if err := w.f.Sync(); err != nil {
			w.syncErr = err
			return err
		}
	}
	return nil // want `success ack \(nil error\) in //repro:poisons ackUnsynced is not dominated`
}
