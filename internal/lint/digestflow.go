package lint

// digestflow: the library's one-hash discipline says a key is hashed
// exactly once, and everything downstream — shard routing, candidate
// buckets at every geometry, snapshot re-placement — derives from the
// stored digest. Functions annotated //repro:digestcarried are those
// downstream paths (putDigest and friends, resize migration, snapshot
// load): they receive or load a digest and must never evaluate a keyed
// hash again. Re-hashing there is not just wasted work — a different
// hasher or seed at load time would silently re-place keys with skewed
// candidates, breaking the geometry-free snapshot contract (the paper's
// "double hashing behaves fully random at any table shape" equivalence
// is about re-deriving from the SAME digest).
//
// A digest source is:
//
//   - any function of repro/internal/hashes whose name starts with
//     SipHash24 or FNV1a;
//   - repro/internal/keyed.DigestBatch and the built-in keyed hashers
//     (Uint64, Int, String, Bytes);
//   - a call of any value whose type is keyed.Hasher (hashing through a
//     stored hasher field);
//   - any same-package function or func-typed field annotated
//     //repro:digestsource.
//
// The check walks the intra-package call graph: a digest source reached
// from a //repro:digestcarried root through same-package calls is
// reported at the offending call site. Cross-package calls are not
// walked (annotate the callee in its own package); a deliberate
// re-hash — e.g. a load-time wrong-hasher verification — is suppressed
// for one line with //repro:rehash-ok <reason>.

import (
	"go/ast"
	"go/types"
	"strings"
)

// DigestFlow is the digestflow analyzer.
var DigestFlow = &Analyzer{
	Name: "digestflow",
	Doc:  "//repro:digestcarried paths re-place from stored digests, never re-hash",
	Run:  runDigestFlow,
}

const (
	hashesPkgPath = "repro/internal/hashes"
	keyedPkgPath  = "repro/internal/keyed"
)

func runDigestFlow(p *Pass) error {
	dirs := p.Directives()
	decls := funcDecls(p)

	// Func-typed fields annotated //repro:digestsource (e.g. a stored
	// Hasher), so calls through them count as hash evaluations.
	srcFields := make(map[*types.Var]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if !dirs.FieldHas(field, DirDigestSrc) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
							srcFields[v] = true
							srcFields[v.Origin()] = true
						}
					}
				}
			}
		}
	}

	// sourceCall reports whether this call evaluates a keyed hash, with
	// a display name for the message.
	sourceCall := func(call *ast.CallExpr) (string, bool) {
		if fn := calleeFunc(p.TypesInfo, call); fn != nil {
			if pkg := fn.Pkg(); pkg != nil {
				name := fn.Name()
				switch {
				case pkg.Path() == hashesPkgPath && (strings.HasPrefix(name, "SipHash24") || strings.HasPrefix(name, "FNV1a")):
					return "hashes." + name, true
				case pkg.Path() == keyedPkgPath && (name == "DigestBatch" || name == "Uint64" || name == "Int" || name == "String" || name == "Bytes"):
					return "keyed." + name, true
				}
				if pkg == p.Pkg {
					if decl, ok := decls[fn.Origin()]; ok && dirs.FuncHas(decl, DirDigestSrc) {
						return name, true
					}
				}
			}
		}
		// A call through a stored keyed.Hasher (or an annotated
		// func-typed field) is a hash evaluation too.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if v, ok := p.TypesInfo.Uses[sel.Sel].(*types.Var); ok && (srcFields[v] || srcFields[v.Origin()]) {
				return v.Name(), true
			}
		}
		if t := p.TypesInfo.TypeOf(call.Fun); t != nil {
			if named, ok := t.(interface {
				Obj() *types.TypeName
			}); ok {
				obj := named.Obj()
				if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == keyedPkgPath && obj.Name() == "Hasher" {
					return "keyed.Hasher", true
				}
			}
		}
		return "", false
	}

	// Intra-package call graph over declared functions.
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	type srcSite struct {
		call *ast.CallExpr
		name string
	}
	sources := make(map[*ast.FuncDecl][]srcSite)
	for fn, fd := range decls {
		_ = fn
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := sourceCall(call); ok {
				if !dirs.SuppressedAt(p.Fset, call.Pos(), DirRehashOK) {
					sources[fd] = append(sources[fd], srcSite{call, name})
				}
				return true
			}
			if callee := calleeFunc(p.TypesInfo, call); callee != nil && callee.Pkg() == p.Pkg {
				if cd, ok := decls[callee.Origin()]; ok {
					callees[fd] = append(callees[fd], cd)
				}
			}
			return true
		})
	}

	// From each digestcarried root, walk reachable same-package
	// functions; any hash evaluation found breaks the contract. Each
	// offending site is reported once, naming one root that reaches it.
	reported := make(map[*ast.CallExpr]bool)
	for _, root := range sortedDecls(decls) {
		if !dirs.FuncHas(root, DirDigestCarry) {
			continue
		}
		seen := map[*ast.FuncDecl]bool{root: true}
		stack := []*ast.FuncDecl{root}
		for len(stack) > 0 {
			fd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, site := range sources[fd] {
				if reported[site.call] {
					continue
				}
				reported[site.call] = true
				if fd == root {
					p.Reportf(site.call.Pos(), "//repro:digestcarried %s re-evaluates a keyed hash (%s): re-derive placement from the stored digest instead", root.Name.Name, site.name)
				} else {
					p.Reportf(site.call.Pos(), "keyed hash evaluation (%s) in %s is reachable from //repro:digestcarried %s: digest-carried paths must re-place from stored digests, never re-hash", site.name, fd.Name.Name, root.Name.Name)
				}
			}
			for _, cd := range callees[fd] {
				if !seen[cd] {
					seen[cd] = true
					stack = append(stack, cd)
				}
			}
		}
	}
	return nil
}

// sortedDecls returns the package's function declarations in source
// order, for deterministic reporting.
func sortedDecls(decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(decls))
	seen := make(map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		if !seen[fd] {
			seen[fd] = true
			out = append(out, fd)
		}
	}
	sortFuncDecls(out)
	return out
}

func sortFuncDecls(fds []*ast.FuncDecl) {
	for i := 1; i < len(fds); i++ {
		for j := i; j > 0 && fds[j].Pos() < fds[j-1].Pos(); j-- {
			fds[j], fds[j-1] = fds[j-1], fds[j]
		}
	}
}
