package cfg

// A small generic forward dataflow driver over the graph. Analyzers
// supply the lattice (Join/Equal), the entry fact, and a block transfer
// function; Forward iterates blocks in reverse postorder until the
// in-states stop changing. Facts must be treated as immutable values —
// Transfer and Join return new facts rather than mutating their inputs
// (value types like bitmask uint64s satisfy this for free).

import "go/ast"

// ForwardProblem describes one forward dataflow analysis over facts T.
type ForwardProblem[T any] struct {
	// Entry is the fact at function entry.
	Entry T
	// Init produces the initial (bottom) in-state for every other block.
	Init func(*Block) T
	// Join merges two facts at a control-flow merge point.
	Join func(a, b T) T
	// Equal reports whether two facts are identical (fixpoint test).
	Equal func(a, b T) bool
	// Transfer applies one block's effect to its in-state, returning the
	// out-state. It must not mutate the input fact.
	Transfer func(*Block, T) T
}

// Forward solves p over g and returns the fixpoint in-state of every
// block, indexed by Block.Index. Unreachable blocks keep their Init
// fact.
func Forward[T any](g *Graph, p ForwardProblem[T]) []T {
	in := make([]T, len(g.Blocks))
	out := make([]T, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b.Index] = p.Init(b)
		out[b.Index] = p.Transfer(b, in[b.Index])
	}
	in[g.Entry.Index] = p.Entry
	out[g.Entry.Index] = p.Transfer(g.Entry, p.Entry)

	// Reachable blocks in reverse postorder: the order dominators were
	// numbered in, so most functions converge in one or two sweeps.
	order := make([]*Block, 0, len(g.Blocks))
	for _, b := range g.Blocks {
		if g.Reachable(b) {
			order = append(order, b)
		}
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if g.rpo[order[j].Index] < g.rpo[order[i].Index] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			fact := in[b.Index]
			if b != g.Entry {
				first := true
				for _, pred := range b.Preds {
					if !g.Reachable(pred) {
						continue
					}
					if first {
						fact = out[pred.Index]
						first = false
					} else {
						fact = p.Join(fact, out[pred.Index])
					}
				}
				if first {
					continue // no reachable preds (entry handled above)
				}
			}
			if !p.Equal(fact, in[b.Index]) || b == g.Entry {
				in[b.Index] = fact
				next := p.Transfer(b, fact)
				if !p.Equal(next, out[b.Index]) {
					out[b.Index] = next
					changed = true
				}
			}
		}
	}
	return in
}

// NodesOf is a convenience for transfer functions that want to walk a
// block's statements including nested expressions: it calls fn for every
// node in every statement of b, in source order, without descending into
// function literals.
func NodesOf(b *Block, fn func(ast.Node)) {
	for _, n := range b.Nodes {
		ast.Inspect(n, func(d ast.Node) bool {
			if d == nil {
				return false
			}
			if _, ok := d.(*ast.FuncLit); ok {
				return false
			}
			fn(d)
			return true
		})
	}
}
