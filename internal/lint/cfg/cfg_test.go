package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src (a file fragment containing one function named
// fn) and builds its graph.
func parseFunc(t *testing.T, src, fn string) (*Graph, *ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return FuncGraph(fd), fd, fset
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil, nil, nil
}

// stmtNamed finds the statement whose source rendering contains marker.
func nodeContaining(t *testing.T, g *Graph, marker string, fset *token.FileSet, fd *ast.FuncDecl, src string) ast.Node {
	t.Helper()
	var found ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || found != nil {
			return false
		}
		if _, ok := n.(ast.Stmt); !ok {
			return true
		}
		start := fset.Position(n.Pos()).Offset
		end := fset.Position(n.End()).Offset
		text := ("package x\n" + src)[start:end]
		if strings.Contains(text, marker) {
			// Keep descending: prefer the innermost statement.
			found = n
			inner := found
			ast.Inspect(n, func(d ast.Node) bool {
				if d == nil || d == n {
					return true
				}
				if _, ok := d.(ast.Stmt); !ok {
					return true
				}
				s := fset.Position(d.Pos()).Offset
				e := fset.Position(d.End()).Offset
				if strings.Contains(("package x\n" + src)[s:e], marker) {
					inner = d
				}
				return true
			})
			found = inner
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("no statement containing %q", marker)
	}
	return found
}

func TestIfStructure(t *testing.T) {
	src := `
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`
	g, fd, fset := parseFunc(t, src, "f")
	then := nodeContaining(t, g, "x = 1", fset, fd, src)
	els := nodeContaining(t, g, "x = 2", fset, fd, src)
	ret := nodeContaining(t, g, "return x", fset, fd, src)

	tb, _ := g.BlockOf(then)
	eb, _ := g.BlockOf(els)
	rb, _ := g.BlockOf(ret)
	if tb == nil || eb == nil || rb == nil {
		t.Fatal("statements not placed in blocks")
	}
	if tb == eb {
		t.Fatal("then and else share a block")
	}
	// The condition block branches: true edge to then, false to else.
	cond := g.Entry
	for cond.Cond == nil && len(cond.Succs) == 1 {
		cond = cond.Succs[0]
	}
	if cond.Cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("no two-way condition block, got %s", g)
	}
	if cond.Succs[0] != tb || cond.Succs[1] != eb {
		t.Fatalf("true/false edges wrong: %s -> %s, %s", cond, cond.Succs[0], cond.Succs[1])
	}
	// Neither arm dominates the join; the condition block does.
	if g.Dominates(tb, rb) || g.Dominates(eb, rb) {
		t.Error("a branch arm dominates the join")
	}
	if !g.Dominates(cond, rb) {
		t.Error("condition block does not dominate the join")
	}
	// Covers follows: x := 0 covers the return, the arms do not.
	init := nodeContaining(t, g, "x := 0", fset, fd, src)
	if !g.Covers(init, ret) {
		t.Error("straight-line predecessor does not cover the return")
	}
	if g.Covers(then, ret) {
		t.Error("a branch arm covers the join return")
	}
}

func TestSameBlockOrder(t *testing.T) {
	src := `
func f() int {
	a := 1
	b := 2
	return a + b
}`
	g, fd, fset := parseFunc(t, src, "f")
	a := nodeContaining(t, g, "a := 1", fset, fd, src)
	b := nodeContaining(t, g, "b := 2", fset, fd, src)
	if !g.Covers(a, b) {
		t.Error("earlier statement does not cover a later one in the same block")
	}
	if g.Covers(b, a) {
		t.Error("later statement covers an earlier one")
	}
}

func TestLoopDominance(t *testing.T) {
	src := `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	g, fd, fset := parseFunc(t, src, "f")
	body := nodeContaining(t, g, "s += i", fset, fd, src)
	ret := nodeContaining(t, g, "return s", fset, fd, src)
	if g.Covers(body, ret) {
		t.Error("loop body covers the post-loop return (zero-trip path exists)")
	}
	init := nodeContaining(t, g, "s := 0", fset, fd, src)
	if !g.Covers(init, body) || !g.Covers(init, ret) {
		t.Error("pre-loop statement does not cover loop body and exit")
	}
	// The loop head has a back edge: its condition block is its own
	// ancestor through the body.
	bb, _ := g.BlockOf(body)
	foundBack := false
	for _, s := range bb.Succs {
		if s.Cond != nil || len(s.Succs) > 0 {
			for _, ss := range append([]*Block{s}, s.Succs...) {
				if g.Dominates(ss, bb) && ss != bb {
					foundBack = true
				}
			}
		}
	}
	if !foundBack {
		t.Errorf("no back edge from loop body:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	src := `
func f(m, n int) int {
	s := 0
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if s > 100 {
				break outer
			}
			if j == i {
				continue outer
			}
			s++
		}
	}
	return s
}`
	g, fd, fset := parseFunc(t, src, "f")
	ret := nodeContaining(t, g, "return s", fset, fd, src)
	brk := nodeContaining(t, g, "break outer", fset, fd, src)
	cont := nodeContaining(t, g, "continue outer", fset, fd, src)
	inc := nodeContaining(t, g, "s++", fset, fd, src)

	bb, _ := g.BlockOf(brk)
	rb, _ := g.BlockOf(ret)
	if bb == nil || rb == nil {
		t.Fatal("break/return not placed")
	}
	// break outer jumps past both loops: the return block must be
	// reachable from the break block without passing through s++.
	ib, _ := g.BlockOf(inc)
	if reaches(g, bb, ib, nil) {
		t.Error("break outer falls through into the loop body")
	}
	if !reaches(g, bb, rb, nil) {
		t.Error("break outer does not reach the function exit path")
	}
	// continue outer re-enters the outer loop: it must reach s++ again
	// (via the next iteration) but not by falling through directly.
	cb, _ := g.BlockOf(cont)
	if !reaches(g, cb, ib, nil) {
		t.Error("continue outer cannot re-reach the inner body")
	}
}

func TestDeferAndPanic(t *testing.T) {
	src := `
func f(bad bool) {
	defer cleanup()
	if bad {
		panic("bad")
	}
	work()
}
func cleanup() {}
func work()    {}`
	g, fd, fset := parseFunc(t, src, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	d := g.Defers[0]
	ret := nodeContaining(t, g, "work()", fset, fd, src)
	if !g.Covers(d, ret) {
		t.Error("defer at function top does not cover the tail")
	}
	// The panic statement terminates its block into Exit.
	pan := nodeContaining(t, g, `panic("bad")`, fset, fd, src)
	pb, _ := g.BlockOf(pan)
	if pb == nil {
		t.Fatal("panic not placed")
	}
	exitEdge := false
	for _, s := range pb.Succs {
		if s == g.Exit {
			exitEdge = true
		}
	}
	if !exitEdge {
		t.Errorf("panic block has no edge to Exit: %s ->%v", pb, pb.Succs)
	}
	wb, _ := g.BlockOf(ret)
	if reaches(g, pb, wb, nil) {
		t.Error("panic block reaches the statement after the if")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
func f(n int) int {
	s := 0
	switch n {
	case 0:
		s = 1
		fallthrough
	case 1:
		s = 2
	default:
		s = 3
	}
	return s
}`
	g, fd, fset := parseFunc(t, src, "f")
	c0 := nodeContaining(t, g, "s = 1", fset, fd, src)
	c1 := nodeContaining(t, g, "s = 2", fset, fd, src)
	b0, _ := g.BlockOf(c0)
	b1, _ := g.BlockOf(c1)
	if !reaches(g, b0, b1, nil) {
		t.Error("fallthrough edge missing between consecutive cases")
	}
	ret := nodeContaining(t, g, "return s", fset, fd, src)
	if g.Covers(c1, ret) {
		t.Error("one case covers the switch join")
	}
}

func TestGoto(t *testing.T) {
	src := `
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`
	g, fd, fset := parseFunc(t, src, "f")
	inc := nodeContaining(t, g, "i++", fset, fd, src)
	ret := nodeContaining(t, g, "return i", fset, fd, src)
	if !g.Covers(inc, ret) {
		t.Error("labeled statement does not cover the return")
	}
	gstmt := nodeContaining(t, g, "goto loop", fset, fd, src)
	gb, _ := g.BlockOf(gstmt)
	ib, _ := g.BlockOf(inc)
	if !reaches(g, gb, ib, nil) {
		t.Error("goto does not branch back to its label")
	}
}

func TestForwardDataflow(t *testing.T) {
	// Count reaching assignments of a simple "held" bit: set in one
	// branch, cleared in the other, joined after.
	src := `
func f(a bool) {
	acquire()
	if a {
		release()
	}
	use()
}
func acquire() {}
func release() {}
func use()     {}`
	g, fd, fset := parseFunc(t, src, "f")
	in := Forward(g, ForwardProblem[uint64]{
		Entry: 0,
		Init:  func(*Block) uint64 { return 0 },
		Join:  func(a, b uint64) uint64 { return a | b },
		Equal: func(a, b uint64) bool { return a == b },
		Transfer: func(b *Block, held uint64) uint64 {
			NodesOf(b, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "acquire":
						held |= 1
					case "release":
						held &^= 1
					}
				}
			})
			return held
		},
	})
	use := nodeContaining(t, g, "use()", fset, fd, src)
	ub, _ := g.BlockOf(use)
	// The join may or may not hold the bit depending on the branch: the
	// union join must report it as possibly held.
	if in[ub.Index]&1 == 0 {
		t.Errorf("union join lost the held bit at the merge: in=%b", in[ub.Index])
	}
	rel := nodeContaining(t, g, "release()", fset, fd, src)
	rb, _ := g.BlockOf(rel)
	if in[rb.Index]&1 == 0 {
		t.Errorf("release block does not see the bit held on entry")
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	src := `
func f(n int) {
	for i := 0; i < n; i++ {
		acquire()
	}
	use()
}
func acquire() {}
func use()     {}`
	g, fd, fset := parseFunc(t, src, "f")
	in := Forward(g, ForwardProblem[uint64]{
		Entry: 0,
		Init:  func(*Block) uint64 { return 0 },
		Join:  func(a, b uint64) uint64 { return a | b },
		Equal: func(a, b uint64) bool { return a == b },
		Transfer: func(b *Block, held uint64) uint64 {
			NodesOf(b, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
						held |= 1
					}
				}
			})
			return held
		},
	})
	// The bit set inside the loop must propagate around the back edge
	// and out to the post-loop block.
	use := nodeContaining(t, g, "use()", fset, fd, src)
	ub, _ := g.BlockOf(use)
	if in[ub.Index]&1 == 0 {
		t.Errorf("loop-acquired bit did not survive the back-edge join")
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	src := `
func f() int {
	return 1
	x := 2
	_ = x
	return x
}`
	g, fd, fset := parseFunc(t, src, "f")
	dead := nodeContaining(t, g, "x := 2", fset, fd, src)
	db, _ := g.BlockOf(dead)
	if db == nil {
		t.Fatal("dead code not placed")
	}
	if g.Reachable(db) {
		t.Error("statements after an unconditional return are marked reachable")
	}
	live := nodeContaining(t, g, "return 1", fset, fd, src)
	if g.Covers(dead, live) {
		t.Error("unreachable statement covers a live one")
	}
}

// reaches reports whether to is reachable from from by graph edges.
func reaches(g *Graph, from, to *Block, seen map[*Block]bool) bool {
	if from == to {
		return true
	}
	if seen == nil {
		seen = map[*Block]bool{}
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, s := range from.Succs {
		if reaches(g, s, to, seen) {
			return true
		}
	}
	return false
}
