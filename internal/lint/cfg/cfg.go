// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, with an iterative dominance computation and a small
// forward-dataflow driver — the path-sensitive substrate under the
// fsyncorder, boundedinput and lockorder analyzers (package
// repro/internal/lint).
//
// Supported statement subset (everything the repository's hot paths
// use): sequencing, if/else, for (init/cond/post and bare `for {}`),
// range, switch and type switch (with fallthrough), select, return,
// panic calls, labeled statements with labeled break/continue, goto,
// and defer. Function literals are opaque: a FuncLit's body runs at
// call time, not where it is written, so its statements are never
// spliced into the enclosing graph.
//
// A graph is pure syntax — no type information — so it can be built
// once per function and shared by every analyzer of a package.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// A Block is a maximal straight-line run of AST nodes: if control
// enters the block, every node in Nodes executes in order (a node is a
// statement, or the condition expression that terminates the block).
// Blocks with a non-nil Cond branch on it: Succs[0] is the true edge
// and Succs[1] the false edge. Blocks without a condition either flow
// unconditionally (one successor), dispatch (switch/select/range heads
// with several successors, unlabeled), or end the function (no
// successors — only the exit block).
type Block struct {
	Index int        // position in Graph.Blocks
	Kind  string     // a human label: "entry", "if.then", "for.cond", ...
	Nodes []ast.Node // statements and terminator conditions, execution order
	Cond  ast.Expr   // non-nil when Succs[0]/Succs[1] are the true/false edges
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// A Graph is one function body's control-flow graph. Entry is where
// control arrives; Exit is the synthetic block every return, panic and
// final fall-off edges into (deferred calls conceptually run on the
// edges into Exit).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// Defers lists the defer statements in registration order. A
	// deferred call runs on every path from its registration point to
	// Exit, so "the defer's block dominates B" is the right question
	// for 'does the deferred call cover B's exits'.
	Defers []*ast.DeferStmt

	nodes map[ast.Node]nodeRef // every placed node and its descendants
	idom  []int32              // immediate dominator per block, -1 unreachable
	rpo   []int32              // reverse-postorder number per block, -1 unreachable
}

type nodeRef struct {
	block *Block
	index int // position of the covering top-level node in block.Nodes
}

// New builds the graph for one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelTarget{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit)
	// The exit block is appended last so Blocks reads in creation order.
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	for _, pg := range b.pendingGotos {
		if t, ok := b.labels[pg.label]; ok && t.start != nil {
			b.edgeFrom(pg.from, t.start)
		} else {
			// A goto to a label the builder never placed (malformed
			// source); fail safe toward the exit.
			b.edgeFrom(pg.from, g.Exit)
		}
	}
	g.index()
	g.dominate()
	return g
}

// FuncGraph builds the graph for fd's body (nil for bodyless decls).
func FuncGraph(fd *ast.FuncDecl) *Graph {
	if fd == nil || fd.Body == nil {
		return nil
	}
	return New(fd.Body)
}

// BlockOf returns the block containing n — n may be any placed
// statement, terminator condition, or descendant of one — and the index
// of its covering node within the block. Nodes the builder never placed
// (e.g. an IfStmt itself, whose Init/Cond/branches are split across
// blocks) return (nil, 0).
func (g *Graph) BlockOf(n ast.Node) (*Block, int) {
	ref, ok := g.nodes[n]
	if !ok {
		return nil, 0
	}
	return ref.block, ref.index
}

// Dominates reports whether a dominates b: every path from Entry to b
// passes through a (reflexively: a dominates itself). Unreachable
// blocks are dominated by nothing and dominate nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	if g.rpo[a.Index] < 0 || g.rpo[b.Index] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b.Index]
		if next < 0 || int(next) == b.Index {
			return false
		}
		b = g.Blocks[next]
	}
}

// Covers reports whether node p executes on every path from Entry to
// node q before q does: p's block strictly dominates q's, or both share
// a block with p earlier. Within a block every node executes once the
// block is entered (blocks are straight-line), so block dominance is
// statement dominance.
func (g *Graph) Covers(p, q ast.Node) bool {
	pb, pi := g.BlockOf(p)
	qb, qi := g.BlockOf(q)
	if pb == nil || qb == nil {
		return false
	}
	if pb == qb {
		return pi < qi
	}
	return g.Dominates(pb, qb)
}

// Idom returns b's immediate dominator, or nil for the entry and
// unreachable blocks.
func (g *Graph) Idom(b *Block) *Block {
	if b == g.Entry || g.rpo[b.Index] < 0 {
		return nil
	}
	if i := g.idom[b.Index]; i >= 0 {
		return g.Blocks[i]
	}
	return nil
}

// Reachable reports whether control can reach b from Entry.
func (g *Graph) Reachable(b *Block) bool { return g.rpo[b.Index] >= 0 }

// String renders the graph for tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s[%d nodes] ->", b, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %s", s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// index records every placed node (and its descendants) to its block.
func (g *Graph) index() {
	g.nodes = make(map[ast.Node]nodeRef)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			ref := nodeRef{block: b, index: i}
			ast.Inspect(n, func(d ast.Node) bool {
				if d == nil {
					return false
				}
				if _, dup := g.nodes[d]; !dup {
					g.nodes[d] = ref
				}
				return true
			})
		}
	}
}

// dominate computes immediate dominators with the iterative
// Cooper–Harvey–Kennedy algorithm over reverse postorder.
func (g *Graph) dominate() {
	n := len(g.Blocks)
	g.idom = make([]int32, n)
	g.rpo = make([]int32, n)
	for i := range g.idom {
		g.idom[i] = -1
		g.rpo[i] = -1
	}
	// Postorder DFS from the entry.
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.Entry)
	// order is postorder; number blocks in reverse postorder.
	for i, j := 0, len(order)-1; j >= 0; i, j = i+1, j-1 {
		g.rpo[order[j].Index] = int32(i)
	}
	g.idom[g.Entry.Index] = int32(g.Entry.Index)
	intersect := func(a, b int32) int32 {
		for a != b {
			for g.rpo[a] > g.rpo[b] {
				a = g.idom[a]
			}
			for g.rpo[b] > g.rpo[a] {
				b = g.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for j := len(order) - 1; j >= 0; j-- { // reverse postorder
			b := order[j]
			if b == g.Entry {
				continue
			}
			var ni int32 = -1
			for _, p := range b.Preds {
				if g.rpo[p.Index] < 0 || g.idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if ni < 0 {
					ni = int32(p.Index)
				} else {
					ni = intersect(ni, int32(p.Index))
				}
			}
			if ni >= 0 && g.idom[b.Index] != ni {
				g.idom[b.Index] = ni
				changed = true
			}
		}
	}
}

// builder holds the construction state.
type builder struct {
	g      *Graph
	cur    *Block
	labels map[string]*labelTarget
	// loop break/continue targets for the innermost unlabeled construct.
	breaks       []*Block
	continues    []*Block
	pendingGotos []pendingGoto
	label        string // label to attach to the next loop/switch/select
}

type labelTarget struct {
	start *Block // the labeled statement's block (goto target)
	brk   *Block // labeled break target
	cont  *Block // labeled continue target
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edgeFrom(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an unconditional edge to target and
// leaves the builder in a fresh unreachable block (statements after a
// return/break/goto parse but never execute).
func (b *builder) jump(target *Block) {
	b.edgeFrom(b.cur, target)
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a labelable construct.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a target; loops consume the
		// label for labeled break/continue.
		start := b.newBlock("label." + s.Label.Name)
		b.edgeFrom(b.cur, start)
		b.cur = start
		t := &labelTarget{start: start}
		b.labels[s.Label.Name] = t
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, b.takeLabel(), "switch")
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, b.takeLabel(), "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}
	default:
		// Assignments, declarations, sends, go statements, inc/dec:
		// straight-line nodes.
		b.add(s)
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	var target *Block
	switch {
	case s.Label != nil:
		if t, ok := b.labels[s.Label.Name]; ok {
			switch s.Tok.String() {
			case "break":
				target = t.brk
			case "continue":
				target = t.cont
			case "goto":
				if t.start != nil {
					target = t.start
				} else {
					b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
					b.cur = b.newBlock("unreachable")
					return
				}
			}
		} else if s.Tok.String() == "goto" {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock("unreachable")
			return
		}
	case s.Tok.String() == "break":
		if n := len(b.breaks); n > 0 {
			target = b.breaks[n-1]
		}
	case s.Tok.String() == "continue":
		if n := len(b.continues); n > 0 {
			target = b.continues[n-1]
		}
	case s.Tok.String() == "fallthrough":
		// Handled by switchBody (the clause's final edge); the statement
		// itself is a no-op node here.
		return
	}
	if target == nil {
		target = b.g.Exit // malformed source; fail safe
	}
	b.jump(target)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	b.cur.Cond = s.Cond
	condBlk := b.cur
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edgeFrom(condBlk, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edgeFrom(b.cur, done)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edgeFrom(condBlk, els)
		b.cur = els
		b.stmt(s.Else)
		b.edgeFrom(b.cur, done)
	} else {
		b.edgeFrom(condBlk, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.cond")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edgeFrom(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		b.edgeFrom(head, body)
		b.edgeFrom(head, done)
	} else {
		b.edgeFrom(head, body)
	}
	if label != "" {
		b.labels[label].brk = done
		b.labels[label].cont = post
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, post)
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.edgeFrom(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edgeFrom(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edgeFrom(b.cur, head)
	// The RangeStmt node itself carries X/Key/Value; placed in the head
	// so analyzers see the per-iteration bindings there.
	head.Nodes = append(head.Nodes, s)
	b.edgeFrom(head, body)
	b.edgeFrom(head, done)
	if label != "" {
		b.labels[label].brk = done
		b.labels[label].cont = head
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.edgeFrom(b.cur, head)
	b.cur = done
}

// switchBody wires the clause blocks of a switch or type switch: the
// dispatch block fans out to every clause (and to done when no default
// exists); each clause falls to done unless it ends in fallthrough.
func (b *builder) switchBody(body *ast.BlockStmt, label, kind string) {
	dispatch := b.cur
	done := b.newBlock(kind + ".done")
	if label != "" {
		b.labels[label].brk = done
	}
	b.breaks = append(b.breaks, done)
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
		b.edgeFrom(dispatch, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
	}
	if !hasDefault {
		b.edgeFrom(dispatch, done)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		fallsThrough := false
		for j, s := range cc.Body {
			if bs, ok := s.(*ast.BranchStmt); ok && bs.Tok.String() == "fallthrough" && j == len(cc.Body)-1 {
				fallsThrough = true
				break
			}
			b.stmt(s)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.edgeFrom(b.cur, blocks[i+1])
			b.cur = b.newBlock("unreachable")
		} else {
			b.edgeFrom(b.cur, done)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := b.cur
	done := b.newBlock("select.done")
	if label != "" {
		b.labels[label].brk = done
	}
	b.breaks = append(b.breaks, done)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.edgeFrom(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edgeFrom(b.cur, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}
