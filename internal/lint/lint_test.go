package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAnalyzers runs each analyzer over its golden testdata: a
// `flagged` package where every violation carries a // want comment,
// and a `clean` package where any finding is a false positive.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		dir      string
	}{
		{lint.SeqAtomic, "seqatomic"},
		{lint.NoAlloc, "noalloc"},
		{lint.UnsafeView, "unsafeview"},
		{lint.DigestFlow, "digestflow"},
		{lint.LockHeld, "lockheld"},
		{lint.FsyncOrder, "fsyncorder"},
		{lint.BoundedInput, "boundedinput"},
		{lint.LockOrder, "lockorder"},
	}
	for _, tc := range cases {
		for _, sub := range []string{"flagged", "clean"} {
			t.Run(tc.analyzer.Name+"/"+sub, func(t *testing.T) {
				linttest.Run(t, filepath.Join("testdata", tc.dir, sub), tc.analyzer)
			})
		}
	}
}

// TestRepositoryClean is the regression gate in test form: the full
// suite over the whole module must report nothing.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks the whole module")
	}
	pkgs, err := lint.Load("", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
