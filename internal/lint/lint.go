// Package lint is reprolint: a suite of static analyzers that enforce
// the library's hot-path invariants mechanically — the contracts that
// the seqlock read path, the zero-allocation pins, the unsafe byte
// views and the digest-carried re-placement paths otherwise state only
// in comments and runtime tests.
//
// Each invariant is declared in the source with a //repro:* directive
// (see ANNOTATIONS.md at the repository root) and checked by one
// analyzer:
//
//   - seqatomic: //repro:seqguarded fields may only be accessed through
//     sync/atomic (or a //repro:seqaccessor helper). The race detector
//     cannot see these bugs: a seqlock reader's torn plain load is
//     rejected by the generation check, so it never misbehaves under
//     -race — it is still undefined behaviour under the Go memory model.
//   - noalloc: //repro:noalloc functions contain no allocating
//     constructs (the static backstop behind the AllocsPerRun pins).
//   - unsafeview: unsafe.Pointer views appear only in files annotated
//     //repro:unsafeview, dominated by a pointer-free/size gate.
//   - digestflow: //repro:digestcarried functions never re-hash — they
//     re-derive placement from stored digests only.
//   - lockheld: //repro:requires-lock functions are reached only from
//     callers that visibly hold the shard lock.
//   - fsyncorder: in //repro:poisons functions, every error a
//     //repro:durable operation (fsync/rename/truncate) returns is
//     poisoned — a sticky-error store or cleanup action — before it can
//     reach a return, and success acks are dominated by a durable op.
//   - boundedinput: //repro:boundedinput decoders never size an
//     allocation from decoded input without a dominating bound check, so
//     a lying length prefix cannot force allocation.
//   - lockorder: //repro:lockclass ranks order every lock-acquisition
//     edge; rank inversions and cycles are reported before they can
//     deadlock.
//
// The last three are path-sensitive: they run over per-function
// control-flow graphs (repro/internal/lint/cfg) with dominance and
// forward dataflow, built once per package and shared by every analyzer.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf) but is built on the standard library alone: packages are
// loaded through `go list -export` and type-checked against compiler
// export data, so the suite needs no module downloads. cmd/reprolint
// runs it standalone or as a `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/cfg"
)

// Analyzer is one named invariant check, run over a type-checked
// package.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "seqatomic"
	Doc  string // one-line description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs   *Directives
	sh     *shared
	report func(Diagnostic)
}

// shared is the per-package state every analyzer of that package reuses:
// the parent map, the object→declaration index, and each function's
// control-flow graph. With three CFG analyzers in the suite, building
// these once per package (instead of once per analyzer) is what keeps a
// repo-wide reprolint run flat as analyzers are added.
type shared struct {
	parents map[ast.Node]ast.Node
	decls   map[*types.Func]*ast.FuncDecl
	cfgs    map[*ast.FuncDecl]*cfg.Graph
}

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directives returns the package's parsed //repro:* directives (lazily
// built, shared by every analyzer running over the pass's package).
func (p *Pass) Directives() *Directives { return p.dirs }

// Parent returns the syntactic parent of n within the pass's files, or
// nil for a file root. The parent map is built once per package.
func (p *Pass) Parent(n ast.Node) ast.Node {
	if p.sh.parents == nil {
		p.sh.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			buildParents(p.sh.parents, f)
		}
	}
	return p.sh.parents[n]
}

// FuncDecls maps each package-level function or method object to its
// declaration — the bridge from a call site's *types.Func back to the
// AST and its directives. Built once per package.
func (p *Pass) FuncDecls() map[*types.Func]*ast.FuncDecl {
	if p.sh.decls == nil {
		m := make(map[*types.Func]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
		p.sh.decls = m
	}
	return p.sh.decls
}

// CFG returns fd's control-flow graph, built lazily and cached for
// every analyzer of the package. Returns nil for bodyless declarations.
func (p *Pass) CFG(fd *ast.FuncDecl) *cfg.Graph {
	if fd == nil || fd.Body == nil {
		return nil
	}
	if p.sh.cfgs == nil {
		p.sh.cfgs = make(map[*ast.FuncDecl]*cfg.Graph)
	}
	g, ok := p.sh.cfgs[fd]
	if !ok {
		g = cfg.FuncGraph(fd)
		p.sh.cfgs[fd] = g
	}
	return g
}

func buildParents(m map[ast.Node]ast.Node, root ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Run executes every analyzer over every package and returns the
// findings sorted by position. An analyzer error aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := ParseDirectives(pkg.Fset, pkg.Files)
		sh := &shared{} // parents/decls/CFGs built once, shared by all analyzers
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				dirs:      dirs,
				sh:        sh,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Analyzers returns the full reprolint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SeqAtomic, NoAlloc, UnsafeView, DigestFlow, LockHeld, FsyncOrder, BoundedInput, LockOrder}
}
