package lint

// Package loading without golang.org/x/tools: `go list -export -deps`
// resolves each target package's files and produces compiler export
// data for every dependency (entirely from the local build cache — no
// network), and go/types type-checks the target sources against that
// export data. The same machinery loads the analyzers' golden testdata
// directories, which the go tool itself ignores.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -export -deps args...` in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// exportLookup builds the types importer lookup from the listed
// packages' export data files.
func exportLookup(pkgs []*listedPackage) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// typeCheck parses and type-checks one package's files against the
// importer.
func typeCheck(fset *token.FileSet, pkgPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Load resolves the patterns (./... style, relative to dir; empty dir
// means the current directory) and returns each matched package parsed
// and type-checked, ready for Run. Dependencies are consumed as export
// data only; test files are not included (the invariants the suite
// enforces live in non-test sources).
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	var out []*Package
	var errs []string
	for _, p := range listed {
		if p.DepOnly || p.Name == "" {
			continue
		}
		if p.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		out = append(out, pkg)
	}
	if len(errs) > 0 {
		return out, fmt.Errorf("lint: load errors:\n  %s", strings.Join(errs, "\n  "))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// CheckFiles parses and type-checks the given Go files as one package,
// resolving imports through lookup (import path -> export data). This
// is the `go vet -vettool` entry point: the go command has already
// resolved the file list and produced export data for every dependency,
// and hands both over in the unit-check config.
func CheckFiles(pkgPath, dir string, goFiles []string, compiler string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, lookup)
	return typeCheck(fset, pkgPath, dir, goFiles, imp)
}

// LoadDir loads a single directory of Go source as one package — the
// golden-testdata path, reaching packages the go tool ignores. Imports
// are resolved to export data via `go list` on the import paths
// themselves, so testdata may import the standard library (and the
// repository's own packages, when run from inside the module).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Collect the imports with a syntax-only parse, then let go list
	// produce export data for them (and their deps).
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" { // no export data; go/types resolves it natively
				imports[path] = true
			}
		}
	}
	var lookup func(string) (io.ReadCloser, error)
	if len(imports) == 0 {
		lookup = func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("lint: unexpected import %q", path)
		}
	} else {
		patterns := make([]string, 0, len(imports))
		for path := range imports {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		lookup = exportLookup(listed)
	}
	fset = token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	return typeCheck(fset, "testdata/"+filepath.Base(dir), dir, goFiles, imp)
}
