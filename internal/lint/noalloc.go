package lint

// noalloc: functions annotated //repro:noalloc are the hot paths whose
// benchmarks pin 0 allocs/op (Get/Put/GetBatch, the hashers, WAL
// append, the engine's placement loop). The analyzer is the static
// backstop behind those runtime pins: it rejects the constructs that
// allocate — so a refactor cannot quietly put an allocation on the hot
// path and wait for the next benchmark run to notice.
//
// Flagged inside a //repro:noalloc function body:
//
//   - make, new, and slice/map composite literals (and &T{...}, which
//     heap-allocates when it escapes);
//   - append whose destination is not rooted in caller-owned storage (a
//     parameter, struct field, package variable, or a slice derived
//     from one — the amortized-scratch pattern stays legal, a fresh
//     function-local slice does not);
//   - func literals that capture variables (the closure context
//     allocates; capture-free literals are static and stay legal);
//   - go statements;
//   - string concatenation and string <-> []byte/[]rune conversions;
//   - boxing into an interface: explicit conversions and call arguments
//     whose parameter is an interface while the argument is a concrete
//     non-pointer-shaped value (pointers, maps, chans and funcs box
//     without allocating; constants are compiler-interned).
//
// Arguments of panic(...) are exempt — a panicking hot path is already
// dead. A finding can be suppressed for one line with
// //repro:allocok <reason> (trailing, or on its own line above),
// which is how the deliberate amortized cases — a pool miss, an error
// return — stay annotated rather than silent.
//
// The check is per-function: callees are not walked, so every function
// on a zero-alloc path carries its own annotation (and its own check).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc is the noalloc analyzer.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//repro:noalloc functions must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) error {
	dirs := p.Directives()
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs.FuncHas(fd, DirNoAlloc) {
				continue
			}
			checkNoAlloc(p, fd)
		}
	}
	return nil
}

type noAllocCheck struct {
	p       *Pass
	fd      *ast.FuncDecl
	rooted  map[*types.Var]bool // slices rooted in caller-owned storage
	inPanic int
}

func checkNoAlloc(p *Pass, fd *ast.FuncDecl) {
	c := &noAllocCheck{p: p, fd: fd, rooted: make(map[*types.Var]bool)}
	// Parameters (and the receiver) are caller-owned storage.
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
				c.rooted[v] = true
			}
		}
	}
	c.walk(fd.Body)
}

func (c *noAllocCheck) report(pos token.Pos, format string, args ...any) {
	if c.p.Directives().SuppressedAt(c.p.Fset, pos, DirAllocOK) {
		return
	}
	c.p.Reportf(pos, "//repro:noalloc %s: "+format, append([]any{c.fd.Name.Name}, args...)...)
}

func (c *noAllocCheck) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.call(n)
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.FuncLit:
			c.funcLit(n)
			return false // captures checked once; inner bodies share this pass
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(c.p.TypesInfo.TypeOf(n)) && !isConst(c.p.TypesInfo, n) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

// call checks one call expression, returning false to stop descent
// (panic arguments are exempt wholesale).
func (c *noAllocCheck) call(call *ast.CallExpr) bool {
	info := c.p.TypesInfo
	switch builtinName(info, call) {
	case "panic":
		return false // a panicking hot path is already dead
	case "make":
		c.report(call.Pos(), "make allocates")
		return true
	case "new":
		c.report(call.Pos(), "new allocates")
		return true
	case "append":
		if len(call.Args) > 0 && !c.isRooted(call.Args[0]) {
			c.report(call.Pos(), "append to a function-local slice may allocate; append into caller-owned or amortized scratch storage")
		}
		return true
	case "":
	default:
		return true // other builtins (len, cap, copy, clear, min, ...) are alloc-free
	}
	if isConversion(info, call) {
		c.conversion(call)
		return true
	}
	c.callArgs(call)
	return true
}

// conversion flags the allocating conversions: to/from string, and
// boxing a concrete value into an interface.
func (c *noAllocCheck) conversion(call *ast.CallExpr) {
	info := c.p.TypesInfo
	dst := info.TypeOf(call)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil || isConst(info, call.Args[0]) {
		return
	}
	if isTypeParam(dst) || isTypeParam(src) {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if isStringType(dst) && !isStringType(src) || isStringType(src) && isByteOrRuneSlice(du) {
		c.report(call.Pos(), "%s -> %s conversion allocates", src, dst)
		return
	}
	if types.IsInterface(du) && !types.IsInterface(su) && boxingAllocates(su) {
		c.report(call.Pos(), "conversion of %s to interface %s boxes (allocates)", src, dst)
	}
}

// callArgs flags implicit interface boxing at a call site: a concrete,
// non-pointer-shaped argument passed to an interface parameter.
func (c *noAllocCheck) callArgs(call *ast.CallExpr) {
	info := c.p.TypesInfo
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice through
			} else if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = slice.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		// A type parameter's underlying is its constraint interface, but
		// instantiation passes values directly — no boxing.
		if pt == nil || isTypeParam(pt) || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isTypeParam(at) || types.IsInterface(at.Underlying()) || isConst(info, arg) || isNil(info, arg) {
			continue
		}
		if boxingAllocates(at.Underlying()) {
			c.report(arg.Pos(), "passing %s to interface parameter boxes (allocates)", at)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		// The variadic slice itself is allocated too, but the boxing
		// reports above already mark the line; only flag a silent
		// variadic call of pointer-shaped values.
		allClean := true
		for i := params.Len() - 1; i < len(call.Args); i++ {
			at := info.TypeOf(call.Args[i])
			if at != nil && !types.IsInterface(at.Underlying()) && !isConst(info, call.Args[i]) && boxingAllocates(at.Underlying()) {
				allClean = false
			}
		}
		if allClean {
			c.report(call.Pos(), "variadic call allocates its argument slice")
		}
	}
}

// compositeLit flags slice and map literals, and &T{...}.
func (c *noAllocCheck) compositeLit(lit *ast.CompositeLit) {
	t := c.p.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	case *types.Struct, *types.Array:
		if u, ok := c.p.Parent(lit).(*ast.UnaryExpr); ok && u.Op == token.AND {
			c.report(lit.Pos(), "&composite literal escapes to the heap")
		}
	}
}

// funcLit flags literals that capture variables from the enclosing
// function (the closure context allocates) and then walks the body with
// the same checks.
func (c *noAllocCheck) funcLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := c.p.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil || isFieldOrParamOf(v, lit) {
			return true
		}
		// A use of a variable declared outside the literal but inside
		// the enclosing function is a capture.
		if v.Pos() >= c.fd.Pos() && v.Pos() < lit.Pos() && !v.IsField() {
			captured = v.Name()
		}
		return captured == ""
	})
	if captured != "" {
		c.report(lit.Pos(), "func literal captures %q: the closure context allocates", captured)
	}
	c.walk(lit.Body)
}

// isFieldOrParamOf reports whether v is declared by the literal's own
// signature.
func isFieldOrParamOf(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() >= lit.Pos() && v.Pos() <= lit.End()
}

// assign tracks which local slices are rooted in caller-owned storage,
// so the amortized append-into-scratch pattern passes.
func (c *noAllocCheck) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := c.p.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			v, ok = c.p.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				continue
			}
		}
		c.rooted[v] = c.isRooted(as.Rhs[i])
	}
}

// isRooted reports whether the slice expression is backed by storage a
// caller owns: a parameter, field, package variable, dereference, or a
// slice/append/call chain rooted in one.
func (c *noAllocCheck) isRooted(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, ok := c.p.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if v.IsField() || c.rooted[v] {
			return true
		}
		// Package-level variables are long-lived scratch.
		return v.Parent() == v.Pkg().Scope()
	case *ast.SelectorExpr:
		// x.f: fields are caller-owned storage.
		if sel, ok := c.p.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		if v, ok := c.p.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v.IsField() || v.Parent() == v.Pkg().Scope()
		}
		return false
	case *ast.SliceExpr:
		return c.isRooted(e.X)
	case *ast.IndexExpr:
		return c.isRooted(e.X)
	case *ast.StarExpr:
		return true
	case *ast.CallExpr:
		// append(s, ...) and Append-style helpers keep their root; a
		// call fed by rooted scratch returns rooted scratch.
		if builtinName(c.p.TypesInfo, e) == "append" && len(e.Args) > 0 {
			return c.isRooted(e.Args[0])
		}
		for _, arg := range e.Args {
			if t := c.p.TypesInfo.TypeOf(arg); t != nil {
				if _, ok := t.Underlying().(*types.Slice); ok && c.isRooted(arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// boxingAllocates reports whether converting a value of this underlying
// type to an interface allocates: pointer-shaped values (pointers,
// maps, chans, funcs, unsafe pointers) fit in the interface word.
func boxingAllocates(u types.Type) bool {
	switch u.(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}
