// Package linttest runs lint analyzers over golden testdata directories
// and checks the findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which the repository
// cannot depend on).
//
// A want comment annotates the line it appears on:
//
//	x := v.words[i] // want `plain access to seqguarded field`
//
// Each backquoted (or double-quoted) string is a regexp that must match
// the message of exactly one diagnostic reported on that line by the
// analyzers under test; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. A clean package is simply
// one with no want comments — any finding fails it.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir as a single package, runs the analyzers over it, and
// compares the diagnostics against the package's // want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on (file, line) whose regexp
// matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts // want comments from the package's files.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitWant(text)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// splitWant parses the sequence of quoted regexps after "// want".
func splitWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` quote")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// strconv.Unquote needs the full quoted token.
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf(`unterminated " quote`)
			}
			uq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, uq)
			s = strings.TrimSpace(s[end+1:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
