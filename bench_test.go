// Benchmarks: one per paper table (each prints the regenerated rows once,
// at a reduced scale — see cmd/paperrepro for configurable-scale runs and
// EXPERIMENTS.md for recorded paper-vs-measured numbers), plus
// micro-benchmarks of the hot paths and the ablation benches called out in
// DESIGN.md §6.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bloom"
	"repro/internal/choice"
	"repro/internal/core"
	"repro/internal/cuckoo"
	"repro/internal/experiments"
	"repro/internal/fluid"
	"repro/internal/hashes"
	"repro/internal/mchtable"
	"repro/internal/openaddr"
	"repro/internal/queueing"
	"repro/internal/rng"
)

// printOnce ensures each table's rows are printed a single time per
// process however many benchmark iterations run.
var printOnce sync.Map

func printTables(name string, tables []experiments.Rendered) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Println()
	for _, t := range tables {
		fmt.Println(t.Text)
	}
}

// benchTable runs a table generator at the given scale divisor and prints
// its rows once.
func benchTable(b *testing.B, name string, scale int, render func(experiments.Options) []experiments.Rendered) {
	b.Helper()
	opt := experiments.Options{Scale: scale, Seed: 0xBE}
	var tables []experiments.Rendered
	for i := 0; i < b.N; i++ {
		tables = render(opt)
	}
	b.StopTimer()
	printTables(name, tables)
}

// Paper tables. Scale divisors keep a single iteration in the seconds
// range; the printed rows use the same code paths as full-scale runs.

func BenchmarkTable1(b *testing.B) { benchTable(b, "t1", 1000, experiments.Table1) }
func BenchmarkTable2(b *testing.B) { benchTable(b, "t2", 1000, experiments.Table2) }
func BenchmarkTable3(b *testing.B) { benchTable(b, "t3", 2000, experiments.Table3) }
func BenchmarkTable4(b *testing.B) { benchTable(b, "t4", 2500, experiments.Table4) }
func BenchmarkTable5(b *testing.B) { benchTable(b, "t5", 2000, experiments.Table5) }
func BenchmarkTable6(b *testing.B) { benchTable(b, "t6", 2000, experiments.Table6) }
func BenchmarkTable7(b *testing.B) { benchTable(b, "t7", 2000, experiments.Table7) }
func BenchmarkTable8(b *testing.B) { benchTable(b, "t8", 200, experiments.Table8) }

// BenchmarkGeneratorCost measures ns per candidate-set draw through the
// per-ball Draw contract — the practical motivation of the paper: double
// hashing needs two PRNG draws per ball where fully random needs d.
func BenchmarkGeneratorCost(b *testing.B) {
	const n, d = 1 << 16, 4
	for name, factory := range map[string]choice.Factory{
		"fully-random-d4": choice.NewFullyRandom,
		"double-hash-d4":  choice.NewDoubleHash,
		"dleft-random-d4": choice.NewDLeftFullyRandom,
		"dleft-double-d4": choice.NewDLeftDoubleHash,
		"fully-random-wr": choice.NewFullyRandomWithReplacement,
	} {
		b.Run(name, func(b *testing.B) {
			gen := factory(n, d, rng.NewXoshiro256(1))
			dst := make([]uint32, d)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen.Draw(dst)
			}
		})
	}
}

// BenchmarkGeneratorBatchCost measures ns per candidate set through the
// batched DrawBatch fast path (512 balls per call), which amortizes the
// generator dispatch and bulk PRNG refill — the engine's hot path.
func BenchmarkGeneratorBatchCost(b *testing.B) {
	const n, d, balls = 1 << 16, 4, 512
	for name, factory := range map[string]choice.Factory{
		"fully-random-d4": choice.NewFullyRandom,
		"double-hash-d4":  choice.NewDoubleHash,
		"dleft-double-d4": choice.NewDLeftDoubleHash,
	} {
		b.Run(name, func(b *testing.B) {
			gen := factory(n, d, rng.NewXoshiro256(1))
			dst := make([]uint32, balls*d)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += balls {
				c := balls
				if b.N-done < c {
					c = b.N - done
				}
				gen.DrawBatch(dst[:c*d], c)
			}
		})
	}
}

// BenchmarkPlace measures ns per ball through the batched placement loop
// (engine.Placer.PlaceN) — the unified hot path every experiment runs on.
func BenchmarkPlace(b *testing.B) {
	const n = 1 << 16
	cases := []struct {
		name    string
		factory choice.Factory
		d       int
		tie     core.TieBreak
	}{
		{"classic-fully-random", choice.NewFullyRandom, 3, core.TieRandom},
		{"classic-double-hash", choice.NewDoubleHash, 3, core.TieRandom},
		{"dleft-double-hash", choice.NewDLeftDoubleHash, 4, core.TieFirst},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			gen := c.factory(n, c.d, rng.NewXoshiro256(2))
			p := core.NewProcess(gen, c.tie, rng.NewXoshiro256(3))
			b.ReportAllocs()
			b.ResetTimer()
			p.PlaceN(b.N)
		})
	}
}

// BenchmarkPlaceSingle measures ns per ball through the incremental Place
// contract (one dynamic dispatch per ball), quantifying what batching
// saves.
func BenchmarkPlaceSingle(b *testing.B) {
	const n = 1 << 16
	gen := choice.NewDoubleHash(n, 3, rng.NewXoshiro256(2))
	p := core.NewProcess(gen, core.TieRandom, rng.NewXoshiro256(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Place()
	}
}

// BenchmarkAblationReplacement compares drawing with vs without
// replacement (DESIGN.md §6; paper footnote 7).
func BenchmarkAblationReplacement(b *testing.B) {
	const n, d = 1 << 14, 4
	for name, factory := range map[string]choice.Factory{
		"without-replacement": choice.NewFullyRandom,
		"with-replacement":    choice.NewFullyRandomWithReplacement,
	} {
		b.Run(name, func(b *testing.B) {
			gen := factory(n, d, rng.NewXoshiro256(4))
			dst := make([]uint32, d)
			for i := 0; i < b.N; i++ {
				gen.Draw(dst)
			}
		})
	}
}

// BenchmarkAblationTieBreak compares random vs first-minimum tie breaking
// in the placement loop.
func BenchmarkAblationTieBreak(b *testing.B) {
	const n, d = 1 << 14, 3
	for name, tie := range map[string]core.TieBreak{
		"tie-random": core.TieRandom,
		"tie-first":  core.TieFirst,
	} {
		b.Run(name, func(b *testing.B) {
			gen := choice.NewDoubleHash(n, d, rng.NewXoshiro256(5))
			p := core.NewProcess(gen, tie, rng.NewXoshiro256(6))
			for i := 0; i < b.N; i++ {
				p.Place()
			}
		})
	}
}

// BenchmarkAblationStride compares the coprime stride (rejection sampling
// on composite n) against the unrestricted stride.
func BenchmarkAblationStride(b *testing.B) {
	const n, d = 3 * (1 << 14), 4 // composite n exercises rejection
	for name, factory := range map[string]choice.Factory{
		"coprime-stride": choice.NewDoubleHash,
		"any-stride":     choice.NewDoubleHashAnyStride,
	} {
		b.Run(name, func(b *testing.B) {
			gen := factory(n, d, rng.NewXoshiro256(7))
			dst := make([]uint32, d)
			for i := 0; i < b.N; i++ {
				gen.Draw(dst)
			}
		})
	}
}

// BenchmarkAblationPRNG swaps the generator family under the placement
// loop, showing results are not an artifact of the PRNG (drand48 is the
// paper's original source).
func BenchmarkAblationPRNG(b *testing.B) {
	const n, d = 1 << 14, 3
	sources := map[string]func() rng.Source{
		"drand48":    func() rng.Source { return rng.NewDrand48(8) },
		"splitmix64": func() rng.Source { return rng.NewSplitMix64(8) },
		"xoshiro256": func() rng.Source { return rng.NewXoshiro256(8) },
		"pcg64":      func() rng.Source { return rng.NewPCG64(8) },
	}
	for name, mk := range sources {
		b.Run(name, func(b *testing.B) {
			gen := choice.NewDoubleHash(n, d, mk())
			p := core.NewProcess(gen, core.TieRandom, rng.NewXoshiro256(9))
			for i := 0; i < b.N; i++ {
				p.Place()
			}
		})
	}
}

// BenchmarkCouplingStep measures the Theorem 2 coupling's cost per step.
func BenchmarkCouplingStep(b *testing.B) {
	c := core.NewCoupling(1<<12, 3, rng.NewXoshiro256(10))
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkQueueTrial measures one short supermarket simulation per
// iteration and reports throughput in completed jobs.
func BenchmarkQueueTrial(b *testing.B) {
	for name, factory := range map[string]choice.Factory{
		"fully-random": choice.NewFullyRandom,
		"double-hash":  choice.NewDoubleHash,
	} {
		b.Run(name, func(b *testing.B) {
			cfg := queueing.Config{
				N: 1 << 10, D: 3, Lambda: 0.9,
				Factory: factory,
				Horizon: 50, Burnin: 5, Seed: 11,
			}
			var jobs int64
			for i := 0; i < b.N; i++ {
				jobs += cfg.RunTrial(i).Completed
			}
			b.ReportMetric(float64(jobs)/float64(b.N), "jobs/trial")
		})
	}
}

// BenchmarkFluidSolve measures the ODE solves used by Table 2 and the
// d-left fluid system.
func BenchmarkFluidSolve(b *testing.B) {
	b.Run("ballsbins-d3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fluid.SolveBallsBins(3, 1, 8)
		}
	})
	b.Run("dleft-d4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fluid.SolveDLeft(4, 1, 8)
		}
	})
	b.Run("supermarket", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fluid.SolveSupermarket(0.9, 3, 50, 12)
		}
	})
}

// BenchmarkBloom measures probe cost for both hashing disciplines.
func BenchmarkBloom(b *testing.B) {
	for name, mode := range map[string]bloom.Mode{
		"k-independent":  bloom.KIndependent,
		"double-hashing": bloom.DoubleHashing,
	} {
		b.Run("add-"+name, func(b *testing.B) {
			f := bloom.New(1<<20, 7, mode, 12)
			for i := 0; i < b.N; i++ {
				f.Add(uint64(i))
			}
		})
		b.Run("contains-"+name, func(b *testing.B) {
			f := bloom.New(1<<20, 7, mode, 12)
			for i := 0; i < 1<<14; i++ {
				f.Add(uint64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Contains(uint64(i))
			}
		})
	}
}

// BenchmarkOpenAddrSearch measures unsuccessful-search cost at a fixed
// load for each probe discipline (the 1/(1−α) comparison).
func BenchmarkOpenAddrSearch(b *testing.B) {
	for name, probe := range map[string]openaddr.Probe{
		"double-hash": openaddr.DoubleHash,
		"uniform":     openaddr.Uniform,
		"linear":      openaddr.Linear,
	} {
		b.Run(name, func(b *testing.B) {
			t := openaddr.New(1<<14, probe, 13)
			t.FillTo(0.7, rng.NewXoshiro256(14))
			src := rng.NewXoshiro256(15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(src.Uint64())
			}
		})
	}
}

// BenchmarkCuckooFill measures bulk-load cost at α = 0.8 per iteration.
func BenchmarkCuckooFill(b *testing.B) {
	for name, mode := range map[string]cuckoo.Mode{
		"independent":   cuckoo.Independent,
		"double-hashed": cuckoo.DoubleHashed,
	} {
		b.Run(name, func(b *testing.B) {
			const capacity = 1 << 12
			for i := 0; i < b.N; i++ {
				t := cuckoo.New(capacity, 3, mode, uint64(i), rng.NewXoshiro256(uint64(i)+1))
				r := t.Fill(capacity*4/5, rng.NewXoshiro256(uint64(i)+2))
				if r.Failed != 0 {
					b.Fatalf("fill failed: %+v", r)
				}
			}
		})
	}
}

// BenchmarkSipHash24 measures keyed-hash throughput at packet-like sizes.
func BenchmarkSipHash24(b *testing.B) {
	key := hashes.SipKeyFromSeed(1)
	for _, size := range []int{8, 16, 64, 256} {
		b.Run(fmt.Sprintf("len=%d", size), func(b *testing.B) {
			data := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				data[0] = byte(i)
				hashes.SipHash24(key, data)
			}
		})
	}
}

// BenchmarkMCHTable measures the multiple-choice hash table under both
// hashing pipelines — the d-hashes-vs-one ablation on a real structure.
func BenchmarkMCHTable(b *testing.B) {
	for name, mode := range map[string]mchtable.HashMode{
		"independent-hashes": mchtable.IndependentHashes,
		"double-hashing":     mchtable.DoubleHashing,
	} {
		b.Run("put-"+name, func(b *testing.B) {
			t := mchtable.New(mchtable.Config{
				Buckets: 1 << 16, SlotsPerBucket: 4, D: 3, Mode: mode, Seed: 1,
			})
			src := rng.NewXoshiro256(2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if t.Occupancy() > 0.7 {
					b.StopTimer()
					t = mchtable.New(mchtable.Config{
						Buckets: 1 << 16, SlotsPerBucket: 4, D: 3, Mode: mode, Seed: uint64(i),
					})
					b.StartTimer()
				}
				t.Put(src.Uint64(), 0)
			}
		})
		b.Run("get-"+name, func(b *testing.B) {
			t := mchtable.New(mchtable.Config{
				Buckets: 1 << 14, SlotsPerBucket: 4, D: 3, Mode: mode, Seed: 3,
			})
			for k := uint64(0); k < 1<<15; k++ {
				t.Put(k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Get(uint64(i) & (1<<15 - 1))
			}
		})
	}
}

// BenchmarkChurnStep measures one delete+insert churn step at m = n.
func BenchmarkChurnStep(b *testing.B) {
	const n = 1 << 14
	cfg := core.Config{N: n, D: 3, Hashing: core.DoubleHash}
	gen := cfg.Factory()(n, 3, rng.NewXoshiro256(4))
	p := core.NewProcess(gen, core.TieRandom, rng.NewXoshiro256(5))
	c := core.NewChurn(p, rng.NewXoshiro256(6))
	for i := 0; i < n; i++ {
		c.Insert()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkAblationDerandomization compares the paper's double hashing
// against the Kenthapadi–Panigrahy two-block derandomization.
func BenchmarkAblationDerandomization(b *testing.B) {
	const n, d = 1 << 14, 4
	for name, factory := range map[string]choice.Factory{
		"double-hash": choice.NewDoubleHash,
		"two-block":   choice.NewTwoBlock,
	} {
		b.Run(name, func(b *testing.B) {
			gen := factory(n, d, rng.NewXoshiro256(7))
			p := core.NewProcess(gen, core.TieRandom, rng.NewXoshiro256(8))
			for i := 0; i < b.N; i++ {
				p.Place()
			}
		})
	}
}

// BenchmarkMaxLoadGrowth places n balls at doubling n and reports the
// observed maximum load — the log log n curve of Theorem 4 — as a metric.
func BenchmarkMaxLoadGrowth(b *testing.B) {
	for _, logN := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("n=2^%d", logN), func(b *testing.B) {
			maxLoad := 0
			for i := 0; i < b.N; i++ {
				r := core.Config{N: 1 << logN, D: 3, Hashing: core.DoubleHash, Seed: uint64(i)}.RunTrial(0)
				maxLoad = r.MaxLoad
			}
			b.ReportMetric(float64(maxLoad), "max-load")
		})
	}
}
