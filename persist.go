package repro

// This file is the durability facade: snapshot Save/Load for every
// container family, and Open — the crash-recoverable map (latest
// snapshot + write-ahead log replay + fresh WAL appends).
//
// A snapshot is (key bytes, value bytes, 64-bit digest) records. The
// digest is the same single keyed hash evaluation every live operation
// spends, and candidates re-derive from it at any table shape, so a
// snapshot written by one geometry reloads into any other — more
// shards, fewer buckets, whatever the new process chose — without ever
// re-hashing a key. The seed (recorded in the snapshot header and
// adopted by Load) and the hasher are the only things that must carry
// across; geometry is free.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cmap"
	"repro/internal/cuckoo"
	"repro/internal/hashes"
	"repro/internal/keyed"
	"repro/internal/mchtable"
	"repro/internal/obs"
	"repro/internal/openaddr"
	"repro/internal/persist"
)

// Codec translates keys or values to and from their persisted byte
// encoding — the persistence counterpart of Hasher. Append appends v's
// encoding to dst; Decode reads a value back from exactly those bytes,
// erroring (never panicking) on malformed input. See CodecFor for the
// built-ins; a custom Codec is just a struct literal with the two
// functions.
type Codec[T any] = keyed.Codec[T]

// CodecFor returns the built-in Codec for T, mirroring HasherFor's
// selection: explicit little-endian encodings for integer, float and
// bool kinds, verbatim bytes for string kinds, and the in-memory byte
// view for fixed-size pointer-free arrays and structs (native
// endianness — see internal/keyed.ViewCodec for the caveats). It panics
// for types holding addresses (pointers, slices, maps, interfaces,
// ...); supply a custom Codec for those.
func CodecFor[T any]() Codec[T] { return keyed.CodecFor[T]() }

// Snapshotter is any container that can stream itself into the
// library's snapshot format — all four typed families satisfy it.
type Snapshotter[K comparable, V any] interface {
	Snapshot(w io.Writer, kc Codec[K], vc Codec[V]) error
}

// Compile-time proof that every typed family is persist-capable.
var (
	_ Snapshotter[uint64, uint64] = (*Map[uint64, uint64])(nil)
	_ Snapshotter[string, uint64] = (*Table[string, uint64])(nil)
	_ Snapshotter[uint64, uint64] = (*CuckooMap[uint64, uint64])(nil)
	_ Snapshotter[string, uint64] = (*OpenMap[string, uint64])(nil)
)

// Save writes a snapshot of c to w using K's and V's built-in codecs
// (panics for types without one — use SaveWith to supply codecs). For
// the concurrent Map the snapshot is per-shard consistent and holds
// each shard's read lock only while that shard's section is encoded;
// the other families are single-threaded and snapshot their exact
// state.
func Save[K comparable, V any](w io.Writer, c Snapshotter[K, V]) error {
	return SaveWith(w, c, CodecFor[K](), CodecFor[V]())
}

// SaveWith is Save with explicit codecs.
func SaveWith[K comparable, V any](w io.Writer, c Snapshotter[K, V], kc Codec[K], vc Codec[V]) error {
	return c.Snapshot(w, kc, vc)
}

// Load reads a Map snapshot from r into a fresh map at whatever
// geometry the options describe — the snapshot's own geometry is
// irrelevant: records place by re-deriving candidates from their stored
// digests, the resize-migration path run as a loader. The snapshot's
// seed overrides WithSeed (digests are functions of it); the hasher
// must be the one the snapshot was written under (verified against the
// first record). With growth enabled (the default) any content fits;
// with WithMaxLoadFactor(0) a snapshot larger than the fixed geometry
// fails the load.
//
// Options consumed: those of NewMap.
func Load[K comparable, V any](r io.Reader, opts ...Option) (*Map[K, V], error) {
	return LoadOf[K, V](r, HasherFor[K](), CodecFor[K](), CodecFor[V](), opts...)
}

// LoadOf is Load with an explicit hasher and codecs.
func LoadOf[K comparable, V any](r io.Reader, h Hasher[K], kc Codec[K], vc Codec[V], opts ...Option) (*Map[K, V], error) {
	o := buildOptions(opts)
	return cmap.LoadKeyed[K, V](r, h, kc, vc, cmap.Config{
		Shards:          o.shards,
		BucketsPerShard: o.buckets,
		SlotsPerBucket:  o.slots,
		D:               o.d,
		Seed:            o.seed, // overridden by the snapshot header
		StashPerShard:   o.stash,
		MaxLoadFactor:   o.maxLoad,
		MigrateBatch:    o.migrateBatch,
	})
}

// LoadTable reads a Table snapshot into a fresh single-threaded table
// at the options' geometry (any bucket count; see Load for the seed and
// hasher rules).
//
// Options consumed: those of NewTable.
func LoadTable[K comparable, V any](r io.Reader, opts ...Option) (*Table[K, V], error) {
	o := buildOptions(opts)
	return mchtable.LoadMap[K, V](r, HasherFor[K](), CodecFor[K](), CodecFor[V](), mchtable.Config{
		Buckets:        o.buckets,
		SlotsPerBucket: o.slots,
		D:              o.d,
		Seed:           o.seed, // overridden by the snapshot header
		StashSize:      o.stash,
	})
}

// LoadCuckooMap reads a CuckooMap snapshot into a fresh map at the
// options' capacity (see Load for the seed and hasher rules). A
// snapshot beyond the new capacity's load threshold fails like the
// equivalent insertions would.
//
// Options consumed: those of NewCuckooMap.
func LoadCuckooMap[K comparable, V any](r io.Reader, opts ...Option) (*CuckooMap[K, V], error) {
	o := buildOptions(opts)
	m, err := cuckoo.Load[K, V](r, HasherFor[K](), CodecFor[K](), CodecFor[V](), o.capacity, o.d)
	if err != nil {
		return nil, err
	}
	if o.maxKicks > 0 {
		m.SetMaxKicks(o.maxKicks)
	}
	return m, nil
}

// LoadOpenMap reads an OpenMap snapshot into a fresh map at the
// options' capacity and probe discipline (see Load for the seed and
// hasher rules).
//
// Options consumed: those of NewOpenMap.
func LoadOpenMap[K comparable, V any](r io.Reader, opts ...Option) (*OpenMap[K, V], error) {
	o := buildOptions(opts)
	return openaddr.Load[K, V](r, HasherFor[K](), CodecFor[K](), CodecFor[V](), o.capacity, o.probe)
}

// DurableMetrics is the durable map's observability hook, attached at
// Open via WithDurableMetrics. Every field must be non-nil when
// attached (use NewDurableMetrics).
type DurableMetrics struct {
	// WAL receives the write-ahead log's instruments: append/fsync
	// latency, group-commit batch sizes, sticky-poison events, and the
	// recovery replay totals from this Open.
	WAL *persist.WALMetrics
	// CheckpointNanos times each successful Checkpoint end to end —
	// snapshot encode, fsync, rename, directory sync, WAL reset.
	CheckpointNanos *obs.Histogram
	// CheckpointBytes records each successful checkpoint's snapshot
	// size in bytes (pre-rename, as encoded).
	CheckpointBytes *obs.Histogram
}

// NewDurableMetrics returns a DurableMetrics with every instrument
// allocated.
func NewDurableMetrics() *DurableMetrics {
	return &DurableMetrics{
		WAL:             persist.NewWALMetrics(),
		CheckpointNanos: new(obs.Histogram),
		CheckpointBytes: new(obs.Histogram),
	}
}

// Snapshot and WAL file names inside a DurableMap directory.
const (
	snapshotFile    = "snapshot"
	snapshotTmpFile = "snapshot.tmp"
	walFile         = "wal"
)

// DurableMap is a crash-recoverable Map: every Put and Delete is
// appended to a write-ahead log before it is applied, a Checkpoint
// writes a snapshot and resets the log, and Open recovers by loading
// the latest snapshot and replaying the log — at whatever geometry the
// new process chose. With fsync enabled (the default) an acknowledged
// write survives power loss; a crash loses only writes whose Put/Delete
// had not returned.
//
// All methods are safe for concurrent use. Writes to different keys
// proceed in parallel (the WAL group-commits concurrent appends into
// shared fsyncs); writes to the same key are serialized through a
// stripe lock so the log's order always matches the map's — recovery
// can never resurrect a superseded value. Checkpoint briefly excludes
// writers — readers never block.
type DurableMap[K comparable, V any] struct {
	//repro:lockclass durable-map 10
	mu      sync.RWMutex // writers share it; Checkpoint excludes them
	m       *Map[K, V]
	wal     *persist.WAL
	kc      Codec[K]
	vc      Codec[V]
	dir     string
	metrics *DurableMetrics // nil unless WithDurableMetrics was given
	buf     sync.Pool       // *walScratch: per-append encode buffers
	// stripes serialize the WAL-append + map-apply pair per key (striped
	// by the encoded key's hash): without it, two racing writes to the
	// same key could land in the WAL in one order and in the map in the
	// other, and recovery would resurrect the superseded value. Writes
	// to different keys almost always take different stripes and stay
	// concurrent (the WAL group-commits them into shared fsyncs).
	stripes [durableStripes]sync.Mutex
}

// durableStripes is the per-key ordering stripe count (power of two).
const durableStripes = 256

type walScratch struct{ k, v []byte }

// stripe returns the ordering lock for an encoded key. It is the
// annotated accessor for the stripe lock class: a local taken from it
// carries the class to its Lock call.
//
//repro:lockclass durable-stripe 20
func (s *DurableMap[K, V]) stripe(keyBytes []byte) *sync.Mutex {
	return &s.stripes[hashes.FNV1a(keyBytes)&(durableStripes-1)]
}

// Open opens (or creates) the durable map stored in dir: it loads
// dir/snapshot if present, replays dir/wal over it (truncating any torn
// tail a crash left), and returns a map ready for durable writes. The
// geometry options describe the map *this* process wants — recovery
// places the snapshot's records at the new shape, so a restart is also
// the moment to resize. Growth must be enabled (it is by default):
// replay must never hit a capacity rejection.
//
// Options consumed: those of NewMap, plus WithWALSync.
func Open[K comparable, V any](dir string, opts ...Option) (*DurableMap[K, V], error) {
	return OpenOf[K, V](dir, HasherFor[K](), CodecFor[K](), CodecFor[V](), opts...)
}

// OpenOf is Open with an explicit hasher and codecs.
func OpenOf[K comparable, V any](dir string, h Hasher[K], kc Codec[K], vc Codec[V], opts ...Option) (*DurableMap[K, V], error) {
	o := buildOptions(opts)
	if o.maxLoad == 0 {
		return nil, errors.New("repro: Open requires online growth (WithMaxLoadFactor > 0), or WAL replay could hit a capacity rejection")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A snapshot.tmp is a checkpoint a crash interrupted before its
	// rename — never valid, always safe to discard.
	os.Remove(filepath.Join(dir, snapshotTmpFile))

	cfg := cmap.Config{
		Shards:          o.shards,
		BucketsPerShard: o.buckets,
		SlotsPerBucket:  o.slots,
		D:               o.d,
		Seed:            o.seed,
		StashPerShard:   o.stash,
		MaxLoadFactor:   o.maxLoad,
		MigrateBatch:    o.migrateBatch,
	}
	var m *Map[K, V]
	if f, err := os.Open(filepath.Join(dir, snapshotFile)); err == nil {
		m, err = cmap.LoadKeyed[K, V](bufio.NewReaderSize(f, 1<<20), h, kc, vc, cfg)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("repro: loading %s: %w", snapshotFile, err)
		}
	} else if os.IsNotExist(err) {
		m = cmap.NewKeyed[K, V](h, cfg)
	} else {
		return nil, err
	}

	var walMx *persist.WALMetrics
	if o.durableMetrics != nil {
		walMx = o.durableMetrics.WAL
	}
	wal, _, err := persist.OpenWAL(filepath.Join(dir, walFile), persist.WALOptions{NoSync: o.walNoSync, Metrics: walMx},
		func(op persist.WALOp, kb, vb []byte) error {
			key, err := kc.Decode(kb)
			if err != nil {
				return err
			}
			switch op {
			case persist.WALPut:
				val, err := vc.Decode(vb)
				if err != nil {
					return err
				}
				if !m.Put(key, val) {
					return errors.New("repro: WAL replay rejected a Put")
				}
			case persist.WALDelete:
				m.Delete(key)
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("repro: recovering %s: %w", walFile, err)
	}
	s := &DurableMap[K, V]{m: m, wal: wal, kc: kc, vc: vc, dir: dir, metrics: o.durableMetrics}
	s.buf.New = func() any { return &walScratch{} }
	return s, nil
}

// Put durably stores key → val: the write is acknowledged only after
// its WAL record is on stable storage (group-committed with concurrent
// writers), then applied to the map.
//
//repro:poisons WAL.Append
func (s *DurableMap[K, V]) Put(key K, val V) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := s.buf.Get().(*walScratch)
	sc.k = s.kc.Append(sc.k[:0], key)
	sc.v = s.vc.Append(sc.v[:0], val)
	st := s.stripe(sc.k)
	st.Lock()
	err := s.wal.Append(persist.WALPut, sc.k, sc.v)
	var applied bool
	if err == nil {
		applied = s.m.Put(key, val)
	}
	st.Unlock()
	s.buf.Put(sc)
	if err != nil {
		return err
	}
	if !applied {
		// Unreachable with growth enabled (Open enforces it); surfaced
		// rather than swallowed in case a future geometry disables it.
		return errors.New("repro: map rejected a logged Put")
	}
	return nil
}

// Delete durably removes key, reporting whether it was present. The
// delete is logged (and acknowledged durable) before it is applied;
// deletes of absent keys are logged too — replay is idempotent.
//
//repro:poisons WAL.Append
func (s *DurableMap[K, V]) Delete(key K) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sc := s.buf.Get().(*walScratch)
	sc.k = s.kc.Append(sc.k[:0], key)
	st := s.stripe(sc.k)
	st.Lock()
	err := s.wal.Append(persist.WALDelete, sc.k, nil)
	var present bool
	if err == nil {
		present = s.m.Delete(key)
	}
	st.Unlock()
	s.buf.Put(sc)
	if err != nil {
		return false, err
	}
	return present, nil
}

// Get returns the value stored for key. Reads never touch the WAL and
// never block on Checkpoint.
func (s *DurableMap[K, V]) Get(key K) (V, bool) { return s.m.Get(key) }

// GetBatch resolves keys[i] → (vals[i], found[i]) through the map's
// pipelined batched lookup tier, returning the number found. Reads are
// not logged, so the durable wrapper adds nothing — see Map.GetBatch
// for the phased-probe semantics. This is the entry point the network
// front-end's per-connection read batching feeds.
func (s *DurableMap[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.m.GetBatch(keys, vals, found)
}

// MGet is the allocating convenience form of GetBatch.
func (s *DurableMap[K, V]) MGet(keys []K) (vals []V, found []bool) { return s.m.MGet(keys) }

// Len returns the number of stored pairs.
func (s *DurableMap[K, V]) Len() int { return s.m.Len() }

// Stats takes the underlying map's occupancy snapshot.
func (s *DurableMap[K, V]) Stats() ContainerStats { return s.m.Stats() }

// Metrics returns the instrumentation attached at Open, nil if none.
func (s *DurableMap[K, V]) Metrics() *DurableMetrics { return s.metrics }

// Err reports the WAL's sticky poison error, nil while the log is
// healthy — the readiness signal: a poisoned WAL refuses every durable
// write until a successful Checkpoint heals it.
func (s *DurableMap[K, V]) Err() error { return s.wal.Err() }

// Range iterates the underlying map (per-shard consistent; fn must not
// call the map back — see Map.Range).
func (s *DurableMap[K, V]) Range(fn func(key K, val V) bool) { s.m.Range(fn) }

// Map returns the underlying concurrent map for read-side integration.
// Writing to it directly bypasses the WAL — those writes would not
// survive a crash.
func (s *DurableMap[K, V]) Map() *Map[K, V] { return s.m }

// Checkpoint writes a new snapshot (atomically: temp file, fsync,
// rename) and resets the WAL, bounding recovery time. Writers are
// excluded for the duration; readers proceed. Crash-safe at every step:
// before the rename the old snapshot + full WAL recover, after it the
// new snapshot + (possibly still unreset) WAL recover — replaying a
// WAL the snapshot already covers is idempotent.
func (s *DurableMap[K, V]) Checkpoint() error {
	dm := s.metrics
	if dm == nil {
		_, err := s.checkpoint()
		return err
	}
	start := time.Now()
	n, err := s.checkpoint()
	if err == nil {
		dm.CheckpointNanos.Record(time.Since(start).Nanoseconds())
		dm.CheckpointBytes.Record(n)
	}
	return err
}

// checkpoint is Checkpoint's body, reporting the snapshot's encoded
// byte size on success.
//
//repro:poisons os.Remove
func (s *DurableMap[K, V]) checkpoint() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, snapshotTmpFile)
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if err := s.m.Snapshot(bw, s.kc, s.vc); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		// Without this removal the fully-written tmp would sit in the
		// directory until the next Open; it is never valid state (only the
		// rename publishes a snapshot), so it must not outlive the error.
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return cw.n, s.wal.Reset()
}

// countingWriter counts the bytes passing through to w — the
// checkpoint-size instrument.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Sync forces an fsync of the WAL — useful with WithWALSync(false) to
// establish a durability point manually.
func (s *DurableMap[K, V]) Sync() error { return s.wal.Sync() }

// Close fsyncs and closes the WAL. The map remains readable; further
// durable writes require a fresh Open.
func (s *DurableMap[K, V]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is on stable storage.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
