# Build/test/bench entry points. The bench target emits Go benchfmt
# output (machine-readable; benchstat- and BENCH_*.json-tooling ready).

GO ?= go
BENCH_OUT ?= bench.out
BENCH_PATTERN ?= .
BENCH_TIME ?= 1s
FUZZ_TIME ?= 20s

.PHONY: all build vet test race check bench bench-smoke fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass; required for internal/cmap (concurrent shard locks
# and the resize hand-off race test, TestRaceResizeHandoff). Kept out of
# `check` so the default target stays fast — CI runs it as its own job,
# and it re-executes the same suite `test` already covers.
race:
	$(GO) test -race ./...

check: build vet test

# Full benchmark sweep; benchfmt output saved for tracking.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . ./internal/... | tee $(BENCH_OUT)

# Fast smoke pass over the hot-path benchmarks (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench 'Place|GeneratorCost|GeneratorBatchCost' -benchmem -benchtime 100x .

# Differential fuzz smoke (used by CI): each op-sequence fuzz target runs
# against the shared shadow-map oracle for FUZZ_TIME. `go test -fuzz`
# accepts one target per invocation, hence one line per package.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCMapOps$$' -fuzztime $(FUZZ_TIME) ./internal/cmap
	$(GO) test -run '^$$' -fuzz '^FuzzCMapStringOps$$' -fuzztime $(FUZZ_TIME) ./internal/cmap
	$(GO) test -run '^$$' -fuzz '^FuzzCuckooOps$$' -fuzztime $(FUZZ_TIME) ./internal/cuckoo
	$(GO) test -run '^$$' -fuzz '^FuzzOpenAddrOps$$' -fuzztime $(FUZZ_TIME) ./internal/openaddr
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotLoad$$' -fuzztime $(FUZZ_TIME) ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecover$$' -fuzztime $(FUZZ_TIME) ./internal/persist

clean:
	rm -f $(BENCH_OUT)
