# Build/test/bench entry points. The bench target emits Go benchfmt
# output (machine-readable; benchstat- and BENCH_*.json-tooling ready).

GO ?= go
BENCH_OUT ?= bench.out
BENCH_PATTERN ?= .
BENCH_TIME ?= 1s
FUZZ_TIME ?= 20s

# The Get-path trajectory benchmarks: single-key Get (serial + parallel,
# steady and mid-migration), batched GetBatch, and the Put baselines the
# read path is traded against. BENCH_GET_CPUS exercises reader scaling.
# CMapGet also picks up CMapGetObsOff/On (the instrumented-vs-bare Get
# pair pinning the metrics overhead) and ObsRecord covers the obs
# recording primitives themselves, so BENCH_get.json carries the
# observability cost trajectory alongside the read path's.
BENCH_GET_PATTERN ?= CMapGet|MapSerialGet|MapSerialPut|CMapPutParallel|ObsRecord|ObsCounterAdd
BENCH_GET_CPUS ?= 1,4,8
BENCH_GET_TIME ?= 0.5s
BENCH_GET_JSON ?= BENCH_get.json

.PHONY: all build vet lint lint-gate test race check bench bench-json bench-smoke fuzz-smoke serve-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static invariant gate: gofmt, then the eight reprolint analyzers
# (seqatomic, noalloc, unsafeview, digestflow, lockheld, fsyncorder,
# boundedinput, lockorder — see ANNOTATIONS.md) over every package
# including cmd/ and examples/, driven through `go vet -vettool` so
# runs are cached per package like any other vet check. staticcheck
# runs when installed; CI installs a pinned version, offline dev boxes
# may not have it and skip with a note rather than failing the gate.
#
# LINT_ANALYZERS=fsyncorder,lockorder (comma-separated names) restricts
# the reprolint pass to a subset: the variable flows through the
# environment into the vettool, which folds it into its -V=full cache
# identity so filtered and full verdicts never mix.
REPROLINT_BIN ?= $(CURDIR)/bin/reprolint

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) build -o $(REPROLINT_BIN) ./cmd/reprolint
	$(GO) vet -vettool=$(REPROLINT_BIN) ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipped (CI runs a pinned version)"; fi

# Self-test for the linter's exit-code contract (0 clean / 1 standalone
# findings / 2 under the vet unit-check protocol) and the
# LINT_ANALYZERS filter, replayed against the fsyncorder goldens.
lint-gate:
	./scripts/lint_gate.sh

test:
	$(GO) test ./...

# Race-detector pass; required for internal/cmap (concurrent shard locks
# and the resize hand-off race test, TestRaceResizeHandoff). Kept out of
# `check` so the default target stays fast — CI runs it as its own job,
# and it re-executes the same suite `test` already covers.
race:
	$(GO) test -race ./...

check: build vet lint test

# Full benchmark sweep; benchfmt output saved for tracking.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . ./internal/... | tee $(BENCH_OUT)

# Get/Put trajectory benchmarks as machine-readable JSON (the checked-in
# BENCH_get.json): the cmap read/write hot paths across -cpu values, so
# the repo carries a perf history PR over PR. CI uploads the artifact.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_GET_PATTERN)' -benchmem -benchtime $(BENCH_GET_TIME) -cpu $(BENCH_GET_CPUS) ./internal/cmap ./internal/obs | $(GO) run ./cmd/benchjson > $(BENCH_GET_JSON)

# Fast smoke pass over the hot-path benchmarks (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench 'Place|GeneratorCost|GeneratorBatchCost' -benchmem -benchtime 100x .

# Differential fuzz smoke (used by CI): each op-sequence fuzz target runs
# against the shared shadow-map oracle for FUZZ_TIME. `go test -fuzz`
# accepts one target per invocation, hence one line per package.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCMapOps$$' -fuzztime $(FUZZ_TIME) ./internal/cmap
	$(GO) test -run '^$$' -fuzz '^FuzzCMapStringOps$$' -fuzztime $(FUZZ_TIME) ./internal/cmap
	$(GO) test -run '^$$' -fuzz '^FuzzCuckooOps$$' -fuzztime $(FUZZ_TIME) ./internal/cuckoo
	$(GO) test -run '^$$' -fuzz '^FuzzOpenAddrOps$$' -fuzztime $(FUZZ_TIME) ./internal/openaddr
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotLoad$$' -fuzztime $(FUZZ_TIME) ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecover$$' -fuzztime $(FUZZ_TIME) ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZ_TIME) ./internal/wire

# End-to-end serving smoke (used by CI): boot served on a loopback
# ephemeral port, drive it with loadgen -net under full verification
# (shadow maps + final MGET sweep; any lost/divergent pair fails),
# require batched MGET reads to beat per-key GETs by >= 1.2x, then
# SIGTERM and prove the restart recovers the checkpointed pairs.
serve-smoke:
	./scripts/serve_smoke.sh

clean:
	rm -f $(BENCH_OUT)
	rm -rf bin
