#!/usr/bin/env bash
# lint_gate.sh — asserts reprolint's exit-code contract against the
# checked-in fsyncorder goldens:
#
#   0  standalone over a clean package
#   1  standalone over a flagged package
#   2  under the go vet unit-check protocol over a flagged package
#      (the protocol's "diagnostics reported" status — anything else
#      and go vet would treat findings as a tool crash)
#
# plus the LINT_ANALYZERS filter: restricting the run to an analyzer
# with no findings in the flagged package must turn exit 1 into exit 0.
#
# The goldens live under internal/lint/testdata/, which the go tool
# skips by name, so they are staged into a throwaway module first.
set -u

cd "$(dirname "$0")/.."

REPROLINT="${REPROLINT_BIN:-$PWD/bin/reprolint}"
go build -o "$REPROLINT" ./cmd/reprolint || exit 1

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

mkdir -p "$tmp/clean" "$tmp/flagged"
printf 'module lintgate\n\ngo 1.24\n' > "$tmp/go.mod"
cp internal/lint/testdata/fsyncorder/clean/*.go "$tmp/clean/"
cp internal/lint/testdata/fsyncorder/flagged/*.go "$tmp/flagged/"

fail=0
expect() { # expect <want-status> <label> <got-status>
    if [ "$3" -ne "$1" ]; then
        echo "lint-gate FAIL: $2: exit $3, want $1" >&2
        fail=1
    else
        echo "lint-gate ok: $2: exit $3"
    fi
}

(cd "$tmp" && "$REPROLINT" ./clean/ >/dev/null 2>&1)
expect 0 "standalone, clean package" $?

(cd "$tmp" && "$REPROLINT" ./flagged/ >/dev/null 2>&1)
expect 1 "standalone, flagged package" $?

# The flagged package's findings are all fsyncorder's; a run filtered
# down to boundedinput must come back clean — and must say so under a
# distinct -V=full identity so vet's cache never conflates the two.
(cd "$tmp" && LINT_ANALYZERS=boundedinput "$REPROLINT" ./flagged/ >/dev/null 2>&1)
expect 0 "standalone, flagged package, LINT_ANALYZERS=boundedinput" $?

(cd "$tmp" && LINT_ANALYZERS=nosuchanalyzer "$REPROLINT" ./flagged/ >/dev/null 2>&1)
expect 1 "standalone, unknown LINT_ANALYZERS name" $?

# Exit 2 is only reachable through the unit-check protocol, so drive a
# real `go vet -work` run (kept work tree), pull out the vet.cfg the go
# command wrote for the flagged package, and replay it directly.
vetlog="$tmp/vet.log"
(cd "$tmp" && go vet -vettool="$REPROLINT" -work ./flagged/ >"$vetlog" 2>&1)
vetstatus=$?
if [ "$vetstatus" -eq 0 ]; then
    echo "lint-gate FAIL: go vet -vettool over flagged package exited 0" >&2
    fail=1
else
    echo "lint-gate ok: go vet -vettool, flagged package: exit $vetstatus (nonzero)"
fi

work="$(sed -n 's/^WORK=//p' "$vetlog" | head -n 1)"
cfg=""
if [ -n "$work" ] && [ -d "$work" ]; then
    cfg="$(grep -l '"ImportPath": "lintgate/flagged"' "$work"/b*/vet.cfg 2>/dev/null | head -n 1)"
fi
if [ -z "$cfg" ]; then
    echo "lint-gate FAIL: no vet.cfg for lintgate/flagged under WORK=$work" >&2
    cat "$vetlog" >&2
    fail=1
else
    "$REPROLINT" "$cfg" >/dev/null 2>&1
    expect 2 "unit-check protocol, flagged package" $?
fi
[ -n "$work" ] && rm -rf "$work"

exit $fail
