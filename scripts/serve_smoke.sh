#!/bin/sh
# serve_smoke.sh — boot a served instance on a loopback ephemeral port,
# drive it with loadgen's network mode under full verification (disjoint
# per-connection key spaces, shadow maps, final MGET sweep: any lost or
# divergent pair fails), compare batched MGET reads against per-key
# GETs, then shut down gracefully and prove a restart recovers every
# pair. Used by `make serve-smoke` and the CI serve-smoke job.
#
# Env knobs:
#   SMOKE_OPS   ops for the verified run        (default 60000)
#   SMOKE_CONNS client connections              (default 4)
#   SMOKE_DIR   scratch dir (default: mktemp; removed on exit)
#   SMOKE_JSON  where loadgen's -json summaries land (default $SMOKE_DIR)
set -eu

OPS="${SMOKE_OPS:-60000}"
CONNS="${SMOKE_CONNS:-4}"
DIR="${SMOKE_DIR:-$(mktemp -d)}"
JSON_DIR="${SMOKE_JSON:-$DIR}"
DATA="$DIR/data"
ADDR_FILE="$DIR/addr"
LOG="$DIR/served.log"
SERVED_PID=""

cleanup() {
    if [ -n "$SERVED_PID" ] && kill -0 "$SERVED_PID" 2>/dev/null; then
        kill "$SERVED_PID" 2>/dev/null || true
        wait "$SERVED_PID" 2>/dev/null || true
    fi
    if [ -z "${SMOKE_DIR:-}" ]; then
        rm -rf "$DIR"
    fi
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- served log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "serve-smoke: building served + loadgen"
go build -o "$DIR/served" ./cmd/served
go build -o "$DIR/loadgen" ./cmd/loadgen

# Boot on an ephemeral port; -addr-file publishes the bound address
# atomically once the listener is up. -wal-sync=false keeps the smoke
# fast; the ack-durability path is covered by the persist test suite.
start_served() {
    rm -f "$ADDR_FILE"
    "$DIR/served" -dir "$DATA" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
        -wal-sync=false -drain 10s >>"$LOG" 2>&1 &
    SERVED_PID=$!
    i=0
    while [ ! -f "$ADDR_FILE" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "served never published its address"
        kill -0 "$SERVED_PID" 2>/dev/null || fail "served exited during startup"
        sleep 0.1
    done
    ADDR="$(cat "$ADDR_FILE")"
    echo "serve-smoke: served up at $ADDR (pid $SERVED_PID)"
}

stop_served() {
    kill -TERM "$SERVED_PID"
    wait "$SERVED_PID" || fail "served exited non-zero on SIGTERM"
    SERVED_PID=""
}

start_served

echo "serve-smoke: verified mixed workload ($OPS ops, $CONNS conns)"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" \
    -read 0.6 -delete 0.1 -verify -seed 7 \
    -json "$JSON_DIR/serve_smoke_verify.json" \
    || fail "verified run reported lost or divergent pairs"

echo "serve-smoke: per-key GET vs batched MGET on the resident map"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" -read 1 -delete 0 \
    -json "$JSON_DIR/serve_smoke_get.json" >/dev/null \
    || fail "per-key GET run failed"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" -read 1 -delete 0 -mget 16 \
    -json "$JSON_DIR/serve_smoke_mget.json" >/dev/null \
    || fail "MGET run failed"

# The batched read path must beat per-key GETs by >= 1.2x on a
# DRAM-resident map (in practice it is several-fold: one round trip and
# one coalesced GetBatch per 16 keys). Ratio check in awk: CI images
# always have it, and the JSON fields are flat.
GET_OPS=$(awk -F'[:,]' '/"ops_per_sec"/{gsub(/[ "]/,"",$2); print $2}' "$JSON_DIR/serve_smoke_get.json")
MGET_OPS=$(awk -F'[:,]' '/"ops_per_sec"/{gsub(/[ "]/,"",$2); print $2}' "$JSON_DIR/serve_smoke_mget.json")
echo "serve-smoke: get $GET_OPS ops/sec, mget(16) $MGET_OPS ops/sec"
awk -v g="$GET_OPS" -v m="$MGET_OPS" 'BEGIN { exit !(m >= 1.2 * g) }' \
    || fail "MGET throughput $MGET_OPS not >= 1.2x per-key GET $GET_OPS"

echo "serve-smoke: graceful shutdown + restart recovery"
stop_served
grep -q "checkpoint:" "$LOG" || fail "shutdown never checkpointed"
start_served
RECOVERED=$(grep -o "recovered [0-9]* pairs" "$LOG" | tail -1 | awk '{print $2}')
[ "$RECOVERED" -gt 0 ] || fail "restart recovered $RECOVERED pairs, expected the checkpointed map"
echo "serve-smoke: restart recovered $RECOVERED pairs"

# The restarted instance must still serve (plain run, not -verify: the
# shadow maps start empty, and the recovered pairs occupy the same key
# space — the oracle is only sound against a map its run populated).
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" \
    -read 0.6 -delete 0.1 -seed 8 >/dev/null \
    || fail "post-restart run failed"
stop_served

echo "serve-smoke: PASS"
