#!/bin/sh
# serve_smoke.sh — boot a served instance on a loopback ephemeral port,
# drive it with loadgen's network mode under full verification (disjoint
# per-connection key spaces, shadow maps, final MGET sweep: any lost or
# divergent pair fails), scrape the admin telemetry plane mid-run
# (/metrics must carry the core series with live values, /healthz must
# report ready, counters must be monotone across scrapes), compare
# batched MGET reads against per-key GETs, then shut down gracefully and
# prove a restart recovers every pair. Used by `make serve-smoke` and
# the CI serve-smoke job.
#
# Env knobs:
#   SMOKE_OPS   ops for the verified run        (default 60000)
#   SMOKE_CONNS client connections              (default 4)
#   SMOKE_DIR   scratch dir (default: mktemp; removed on exit)
#   SMOKE_JSON  where loadgen's -json summaries land (default $SMOKE_DIR)
set -eu

OPS="${SMOKE_OPS:-60000}"
CONNS="${SMOKE_CONNS:-4}"
DIR="${SMOKE_DIR:-$(mktemp -d)}"
JSON_DIR="${SMOKE_JSON:-$DIR}"
DATA="$DIR/data"
ADDR_FILE="$DIR/addr"
ADMIN_FILE="$DIR/admin_addr"
LOG="$DIR/served.log"
SERVED_PID=""

cleanup() {
    if [ -n "$SERVED_PID" ] && kill -0 "$SERVED_PID" 2>/dev/null; then
        kill "$SERVED_PID" 2>/dev/null || true
        wait "$SERVED_PID" 2>/dev/null || true
    fi
    if [ -z "${SMOKE_DIR:-}" ]; then
        rm -rf "$DIR"
    fi
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- served log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "serve-smoke: building served + loadgen"
go build -o "$DIR/served" ./cmd/served
go build -o "$DIR/loadgen" ./cmd/loadgen

# Boot on an ephemeral port; -addr-file publishes the bound address
# atomically once the listener is up. -wal-sync=false keeps the smoke
# fast; the ack-durability path is covered by the persist test suite.
start_served() {
    rm -f "$ADDR_FILE" "$ADMIN_FILE"
    "$DIR/served" -dir "$DATA" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
        -admin 127.0.0.1:0 -admin-addr-file "$ADMIN_FILE" \
        -wal-sync=false -drain 10s >>"$LOG" 2>&1 &
    SERVED_PID=$!
    i=0
    while [ ! -f "$ADDR_FILE" ] || [ ! -f "$ADMIN_FILE" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "served never published its address"
        kill -0 "$SERVED_PID" 2>/dev/null || fail "served exited during startup"
        sleep 0.1
    done
    ADDR="$(cat "$ADDR_FILE")"
    ADMIN="$(cat "$ADMIN_FILE")"
    echo "serve-smoke: served up at $ADDR (admin $ADMIN, pid $SERVED_PID)"
}

# fetch URL to stdout; curl everywhere CI runs, wget as the fallback.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 "$1"
    else
        wget -qO- -T 10 "$1"
    fi
}

# metric NAME FILE — the value of an unlabeled sample line.
metric() {
    awk -v n="$1" '$1 == n { print $2 }' "$2"
}

stop_served() {
    kill -TERM "$SERVED_PID"
    wait "$SERVED_PID" || fail "served exited non-zero on SIGTERM"
    SERVED_PID=""
}

start_served

echo "serve-smoke: verified mixed workload ($OPS ops, $CONNS conns)"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" \
    -read 0.6 -delete 0.1 -verify -seed 7 \
    -json "$JSON_DIR/serve_smoke_verify.json" \
    || fail "verified run reported lost or divergent pairs"

# Mid-run telemetry: the workload above has touched every layer, so
# the scrape must show live values — a serving process whose /metrics
# is all zeros is a wiring bug, not a quiet one.
echo "serve-smoke: scraping the admin plane at $ADMIN"
fetch "http://$ADMIN/healthz" | grep -qx "ok" || fail "/healthz did not report ok"
fetch "http://$ADMIN/metrics" >"$DIR/metrics1" || fail "/metrics scrape failed"
for series in \
    repro_map_len repro_map_occupancy repro_map_getbatch_seconds \
    repro_map_probe_depth repro_map_put_seconds \
    repro_wal_appends_total repro_wal_healthy repro_wal_replay_records_total \
    repro_server_conns_accepted_total repro_server_gets_total \
    repro_server_sets_total repro_server_batch_size repro_server_get_seconds; do
    grep -q "^$series" "$DIR/metrics1" || fail "/metrics is missing $series"
done
[ "$(metric repro_wal_healthy "$DIR/metrics1")" = "1" ] \
    || fail "repro_wal_healthy != 1 on a healthy instance"
MAP_LEN=$(metric repro_map_len "$DIR/metrics1")
awk -v v="$MAP_LEN" 'BEGIN { exit !(v > 0) }' \
    || fail "repro_map_len $MAP_LEN after a mixed workload"
SETS1=$(metric repro_server_sets_total "$DIR/metrics1")
GETS1=$(metric repro_server_gets_total "$DIR/metrics1")
WAL1=$(metric repro_wal_appends_total "$DIR/metrics1")
awk -v s="$SETS1" -v g="$GETS1" -v w="$WAL1" \
    'BEGIN { exit !(s > 0 && g > 0 && w > 0) }' \
    || fail "core counters not live: sets=$SETS1 gets=$GETS1 wal_appends=$WAL1"

echo "serve-smoke: per-key GET vs batched MGET on the resident map"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" -read 1 -delete 0 \
    -json "$JSON_DIR/serve_smoke_get.json" >/dev/null \
    || fail "per-key GET run failed"
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" -read 1 -delete 0 -mget 16 \
    -json "$JSON_DIR/serve_smoke_mget.json" >/dev/null \
    || fail "MGET run failed"

# The batched read path must beat per-key GETs by >= 1.2x on a
# DRAM-resident map (in practice it is several-fold: one round trip and
# one coalesced GetBatch per 16 keys). Ratio check in awk: CI images
# always have it, and the JSON fields are flat.
GET_OPS=$(awk -F'[:,]' '/"ops_per_sec"/{gsub(/[ "]/,"",$2); print $2}' "$JSON_DIR/serve_smoke_get.json")
MGET_OPS=$(awk -F'[:,]' '/"ops_per_sec"/{gsub(/[ "]/,"",$2); print $2}' "$JSON_DIR/serve_smoke_mget.json")
echo "serve-smoke: get $GET_OPS ops/sec, mget(16) $MGET_OPS ops/sec"
awk -v g="$GET_OPS" -v m="$MGET_OPS" 'BEGIN { exit !(m >= 1.2 * g) }' \
    || fail "MGET throughput $MGET_OPS not >= 1.2x per-key GET $GET_OPS"

# Second scrape: the read runs above must have moved the read-side
# counters strictly forward (monotonicity across scrapes), and the
# MGET run must have produced multi-key server-side batches.
fetch "http://$ADMIN/metrics" >"$DIR/metrics2" || fail "second /metrics scrape failed"
GETS2=$(metric repro_server_gets_total "$DIR/metrics2")
MGETS2=$(metric repro_server_mgets_total "$DIR/metrics2")
BATCHES2=$(metric repro_server_batch_size_count "$DIR/metrics2")
awk -v a="$GETS1" -v b="$GETS2" 'BEGIN { exit !(b > a) }' \
    || fail "repro_server_gets_total not monotone across scrapes ($GETS1 -> $GETS2)"
awk -v m="$MGETS2" -v n="$BATCHES2" 'BEGIN { exit !(m > 0 && n > 0) }' \
    || fail "MGET run left no trace: mgets=$MGETS2 batch_count=$BATCHES2"
echo "serve-smoke: telemetry live and monotone (gets $GETS1 -> $GETS2, map_len $MAP_LEN)"

echo "serve-smoke: graceful shutdown + restart recovery"
stop_served
grep -q "checkpoint:" "$LOG" || fail "shutdown never checkpointed"
start_served
RECOVERED=$(grep -o "recovered [0-9]* pairs" "$LOG" | tail -1 | awk '{print $2}')
[ "$RECOVERED" -gt 0 ] || fail "restart recovered $RECOVERED pairs, expected the checkpointed map"
echo "serve-smoke: restart recovered $RECOVERED pairs"

# The restarted instance must still serve (plain run, not -verify: the
# shadow maps start empty, and the recovered pairs occupy the same key
# space — the oracle is only sound against a map its run populated).
"$DIR/loadgen" -net "$ADDR" -ops "$OPS" -conns "$CONNS" \
    -read 0.6 -delete 0.1 -seed 8 >/dev/null \
    || fail "post-restart run failed"
stop_served

echo "serve-smoke: PASS"
