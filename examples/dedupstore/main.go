// Dedupstore: dimensioning and then actually serving a fingerprint index,
// the ChunkStash-style deduplication scenario the paper's introduction
// cites as a deployed user of multiple-choice hashing with double hashing
// in hardware-friendly form ([11] Debnath–Sengupta–Li).
//
// A dedup store keeps an in-memory index mapping chunk fingerprints to
// flash locations. With the typed API the index speaks the store's real
// domain directly: keys are content-digest strings ("sha256:…", hashed in
// place by the string hasher — one SipHash evaluation per lookup, zero
// allocations), values are typed FlashLoc structs. The old uint64 version
// of this example had to truncate fingerprints into integers and pack
// locations into shifted bits by hand; that encoding layer is gone.
//
// Ingest is parallel — several streams chunk and hash data at once — so
// the index is a repro.Map: fingerprints route by one SipHash digest to a
// shard and to d candidate buckets inside it, writers on different shards
// never contend, and bucket occupancy inside every shard follows the
// paper's balanced-allocation tables.
//
// The program first *dimensions* the buckets with the balls-into-bins
// simulator (what fraction of buckets would exceed c slots at full
// occupancy?), then *builds* the index: concurrent ingest streams insert
// fingerprints until the map holds one per bucket on average, and the
// measured bucket-load distribution is printed next to the simulator's
// prediction — the dimensioning transfers to the live structure because
// each shard is exactly the simulated process, whatever the key type.
//
// Finally it makes the index *crash-recoverable*: a second, durable
// index (repro.Open = snapshot + write-ahead log) ingests fingerprints,
// checkpoints, takes more writes that live only in the WAL, and is then
// abandoned mid-flight — the crash. Reopening the same directory at a
// DIFFERENT geometry recovers every acknowledged fingerprint: entries
// carry their hash digests, so the snapshot reloads at any shard/bucket
// shape and the WAL replays on top.
//
// Run with: go run ./examples/dedupstore
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro"
)

// FlashLoc is where a chunk lives on flash — a typed value, no bit
// packing.
type FlashLoc struct {
	Block  uint32
	Offset uint32
}

func main() {
	const (
		shards   = 8
		buckets  = 1 << 13 // per shard; 65536 buckets total
		slots    = 4       // generous; the question is how few are needed
		d        = 4
		trials   = 20
		totalBkt = shards * buckets
	)

	// Phase 1 — dimension: the classic d=4 double-hashing load profile at
	// one fingerprint per bucket, from the paper's simulator.
	sim := repro.Run(repro.Config{
		N: totalBkt, M: totalBkt, D: d,
		Hashing: repro.DoubleHash, Trials: trials, Seed: 1,
	})

	// Phase 2 — build: concurrent ingest streams fill the live index to
	// the same occupancy (one fingerprint per bucket on average). Fixed
	// capacity: a dedup index is dimensioned up front, so growth stays
	// off and overflow goes to the per-shard stash.
	idx := repro.NewMap[string, FlashLoc](
		repro.WithShards(shards), repro.WithBuckets(buckets), repro.WithSlots(slots),
		repro.WithD(d), repro.WithSeed(7), repro.WithStash(64),
		repro.WithMaxLoadFactor(0),
	)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	perWorker := totalBkt / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := repro.NewRandomSource(uint64(w)*13 + 5)
			for stored := 0; stored < perWorker; {
				// The chunk's content digest, as the store would key it.
				fp := fmt.Sprintf("sha256:%016x%016x", src.Uint64(), src.Uint64())
				loc := FlashLoc{Block: uint32(stored / 64), Offset: uint32(stored % 64)}
				if idx.Put(fp, loc) {
					stored++
				}
			}
		}(w)
	}
	wg.Wait()
	st := idx.Stats()

	fmt.Printf("fingerprint index: %d shards × %d buckets, d=%d, %d ingest streams, %d fingerprints\n",
		shards, buckets, d, workers, st.Len)
	fmt.Printf("keys: content-digest strings hashed in place (one SipHash, 0 allocs per op); values: typed FlashLoc\n\n")
	fmt.Println("Bucket load  Simulated (classic d=4)  Measured (live map)")
	maxLoad := sim.MaxObservedLoad()
	if st.BucketLoads.MaxValue() > maxLoad {
		maxLoad = st.BucketLoads.MaxValue()
	}
	for l := 0; l <= maxLoad; l++ {
		fmt.Printf("%11d  %23.5f  %19.5f\n", l, sim.FractionAtLoad(l), st.BucketLoads.Fraction(l))
	}

	fmt.Println("\nOverflow by bucket capacity (fraction of buckets exceeding c slots):")
	fmt.Println("Capacity c  Simulated  Measured")
	for c := 1; c <= 3; c++ {
		fmt.Printf("%10d  %9.2e  %8.2e\n", c, sim.TailFraction(c+1), st.BucketLoads.TailFraction(c+1))
	}
	fmt.Printf("\nstash holds %d of %d fingerprints; shard fill min/max %d/%d\n",
		st.Stashed, st.Len, st.MinShardLen, st.MaxShardLen)

	fmt.Println("\nThe live concurrent index reproduces the simulated distribution:")
	fmt.Println("dimension the buckets from the paper's tables, then serve parallel")
	fmt.Println("ingest from the same math — one hash per fingerprint end to end,")
	fmt.Println("straight from the store's own key and value types.")

	// Phase 3 — survive a crash: the same index, made durable.
	durable()
}

// durable demonstrates the persistence subsystem on the dedup index:
// durable ingest, a checkpoint, WAL-only writes, a crash, and recovery
// at a different geometry.
func durable() {
	const (
		checkpointed = 3000 // fingerprints covered by the snapshot
		walOnly      = 500  // fingerprints that exist only in the WAL
	)
	dir, err := os.MkdirTemp("", "dedupstore-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	fp := func(i int) string { return fmt.Sprintf("sha256:%064x", i*2654435761) }

	// A modest geometry for the durable run; growth on (Open requires it —
	// WAL replay must never hit a capacity rejection).
	store, err := repro.Open[string, FlashLoc](dir,
		repro.WithShards(4), repro.WithBuckets(64), repro.WithD(4), repro.WithSeed(7))
	if err != nil {
		panic(err)
	}
	// Parallel durable ingest: every Put is acknowledged only after its
	// WAL record is fsynced; concurrent writers share fsyncs (group
	// commit).
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < checkpointed; i += workers {
				if err := store.Put(fp(i), FlashLoc{Block: uint32(i / 64), Offset: uint32(i % 64)}); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := store.Checkpoint(); err != nil { // snapshot written, WAL reset
		panic(err)
	}
	for i := checkpointed; i < checkpointed+walOnly; i++ { // WAL-only tail
		if err := store.Put(fp(i), FlashLoc{Block: uint32(i / 64), Offset: uint32(i % 64)}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("\nDurable index: %d fingerprints ingested through the WAL by %d streams,\n", store.Len(), workers)
	fmt.Printf("checkpoint covers %d, the last %d live only in the log. Crashing now —\n", checkpointed, walOnly)
	// The crash: no Close, no second checkpoint. The handle is abandoned
	// with the last writes sitting in the WAL.
	store = nil

	// Recovery — at 4× the shards and ¼ the buckets of the writer, because
	// geometry is the new process's choice, not the file's.
	recovered, err := repro.Open[string, FlashLoc](dir,
		repro.WithShards(16), repro.WithBuckets(16), repro.WithD(4), repro.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer recovered.Close()
	missing := 0
	for i := 0; i < checkpointed+walOnly; i++ {
		want := FlashLoc{Block: uint32(i / 64), Offset: uint32(i % 64)}
		if got, ok := recovered.Get(fp(i)); !ok || got != want {
			missing++
		}
	}
	rst := recovered.Stats()
	fmt.Printf("recovered %d/%d fingerprints at a 16-shard geometry (was 4): %d missing or corrupt\n",
		recovered.Len(), checkpointed+walOnly, missing)
	fmt.Printf("(snapshot + WAL replay; %d shards × growing buckets, occupancy %.2f)\n", rst.Shards, rst.Occupancy)
	fmt.Println("\nEvery acknowledged fingerprint survived the crash, and the index came")
	fmt.Println("back at a different shard/bucket shape: snapshots store (key, value,")
	fmt.Println("digest) and candidates re-derive from the digest at any geometry.")
}
