// Dedupstore: dimensioning the bucket size of a d-left fingerprint index,
// the ChunkStash-style deduplication scenario the paper's introduction
// cites as a deployed user of multiple-choice hashing with double hashing
// in hardware-friendly form ([11] Debnath–Sengupta–Li).
//
// A dedup store keeps an in-memory index mapping chunk fingerprints to
// flash locations. The index is a d-left hash table: 4 subtables, each
// fingerprint hashed to one bucket per subtable, stored in the
// least-loaded (ties to the left). Buckets hold a fixed number of slots,
// so the design question is: how many slots per bucket guarantee that
// overflow is negligible at the target occupancy?
//
// This program answers it by simulating the bucket-load distribution at
// 100% occupancy (as many fingerprints as buckets) under fully random and
// double-hashing choices, showing (a) one slot is not enough, two slots
// overflow never, and (b) the cheap double-hashing variant is just as
// safe — the paper's Table 7 in systems clothing.
//
// Run with: go run ./examples/dedupstore
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		buckets      = 1 << 16 // total buckets across the 4 subtables
		subtables    = 4
		fingerprints = buckets // occupancy 1.0: one fingerprint per bucket on average
		trials       = 50
	)

	fr := repro.Run(repro.Config{
		N: buckets, M: fingerprints, D: subtables,
		Scheme: repro.DLeft, Hashing: repro.FullyRandom,
		Trials: trials, Seed: 1,
	})
	dh := repro.Run(repro.Config{
		N: buckets, M: fingerprints, D: subtables,
		Scheme: repro.DLeft, Hashing: repro.DoubleHash,
		Trials: trials, Seed: 2,
	})

	fmt.Printf("d-left fingerprint index: %d buckets in %d subtables, %d fingerprints, %d trials\n\n",
		buckets, subtables, fingerprints, trials)
	fmt.Println("Bucket load  Fully random  Double hashing")
	maxLoad := fr.MaxObservedLoad()
	if dh.MaxObservedLoad() > maxLoad {
		maxLoad = dh.MaxObservedLoad()
	}
	for l := 0; l <= maxLoad; l++ {
		fmt.Printf("%11d  %12.5f  %14.5f\n", l, fr.FractionAtLoad(l), dh.FractionAtLoad(l))
	}

	fmt.Println("\nOverflow probability by bucket capacity (fraction of buckets exceeding c slots):")
	fmt.Println("Capacity c  Fully random  Double hashing")
	for c := 1; c <= 3; c++ {
		fmt.Printf("%10d  %12.2e  %14.2e\n", c, fr.TailFraction(c+1), dh.TailFraction(c+1))
	}

	fmt.Println("\nTwo slots per bucket suffice at full occupancy, and deriving all four")
	fmt.Println("bucket choices from two hash values (double hashing) is equally safe —")
	fmt.Println("the index needs half the hashing bandwidth in hardware.")
}
