// Flowtable: a router flow table built on the typed concurrent
// multiple-choice hash map — the hardware scenario the paper's
// introduction targets ("multiple-choice hashing is used in several
// hardware systems (such as routers), and double hashing both requires
// less (pseudo-)randomness and is extremely conducive to implementation
// in hardware"), now served by many packet-processing cores at once.
//
// Flows are keyed by their actual 5-tuple — a padding-free struct hashed
// in place by the byte-view hasher the typed API picks for it
// (repro.HasherFor, backed by keyed.BytesOf) — and carry a typed
// per-flow counter struct as the value. No hand-rolled key encoding
// anywhere: the old uint64 version of this example had to synthesize
// flows as pre-hashed integers because the map only spoke uint64; the
// typed API hashes the real key exactly once per packet (one SipHash
// evaluation yields the shard and all d=3 candidate buckets), which is
// the paper's payoff, while each shard keeps the balanced-allocation
// occupancy guarantees of the least-loaded rule.
//
// The table is deliberately provisioned too small for the steady state:
// it starts at a quarter of the flows it will hold and grows live —
// shards crossing the 0.80 occupancy watermark double their bucket count
// and migrate entries incrementally while every packet-processing core
// keeps hammering it. Each flow's stored digest re-derives its candidate
// buckets at the doubled geometry, so growth costs zero extra hash units
// and no flow is ever unreachable mid-migration.
//
// Run with: go run ./examples/flowtable
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// FiveTuple identifies a flow. The fields sum to exactly 16 bytes with
// no padding, so the byte-view hasher accepts it (equal tuples always
// carry equal bytes); Zone doubles as a VRF/partition id.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint16
	Zone             uint16
}

// FlowStat is the per-flow state a real pipeline would keep — a typed
// value, stored in the map's generic value slots.
type FlowStat struct {
	Packets uint64
	Epoch   uint64
}

func main() {
	const (
		shards        = 16
		startBuckets  = 1 << 6 // per shard; grows live to 1<<8 under the watermark
		targetBuckets = 1 << 8
		slots         = 4
		d             = 3
		capacity      = shards * targetBuckets * slots
		occupancy     = 0.75 // steady-state flows / final capacity
		churnOps      = 100000
	)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	flowsPerWorker := int(occupancy*capacity) / workers

	t := repro.NewMap[FiveTuple, FlowStat](
		repro.WithShards(shards), repro.WithBuckets(startBuckets), repro.WithSlots(slots),
		repro.WithD(d), repro.WithSeed(1), repro.WithStash(16),
		repro.WithMaxLoadFactor(0.80), repro.WithMigrateBatch(16),
	)
	fmt.Printf("flow table: %d shards × %d buckets × %d slots growing online, d=%d, %d workers, steady state %d flows (%.0f%% of final capacity)\n",
		shards, startBuckets, slots, d, workers, flowsPerWorker*workers, occupancy*100)
	fmt.Printf("keys: real 16-byte 5-tuples, hashed in place (one SipHash per packet); values: typed FlowStat structs\n\n")

	var totalOps atomic.Int64 // map operations actually performed, all phases
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := repro.NewRandomSource(uint64(w) + 99)
			randFlow := func() FiveTuple {
				a, b := src.Uint64(), src.Uint64()
				return FiveTuple{
					SrcIP: uint32(a), DstIP: uint32(a >> 32),
					SrcPort: uint16(b), DstPort: uint16(b >> 16),
					Proto: uint16(b>>32)%2*11 + 6, // TCP or UDP-ish
					Zone:  uint16(w),
				}
			}
			ops := 0

			// Warm up this worker's share of the steady state.
			live := make([]FiveTuple, 0, flowsPerWorker)
			for len(live) < flowsPerWorker {
				f := randFlow()
				ops++
				if t.Put(f, FlowStat{Packets: 1}) {
					live = append(live, f)
				}
			}
			// Churn: expire a random flow, admit a new one — concurrently
			// with every other worker doing the same.
			for op := 0; op < churnOps/workers; op++ {
				i := int(src.Uint64() % uint64(len(live)))
				ops++
				if !t.Delete(live[i]) {
					panic("live flow missing")
				}
				for {
					f := randFlow()
					ops++
					if t.Put(f, FlowStat{Packets: 1, Epoch: uint64(op)}) {
						live[i] = f
						break
					}
				}
			}
			// Verify lookups after churn.
			for _, f := range live {
				ops++
				if _, ok := t.Get(f); !ok {
					panic("lookup failed after churn")
				}
			}
			totalOps.Add(int64(ops))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Finish any still-draining migration, then report.
	for t.MigrateStep(256) > 0 {
	}
	st := t.Stats()
	if st.Resizes == 0 {
		panic("steady state exceeds the initial capacity but no shard resized")
	}
	fmt.Printf("Stored    Stash  Occupancy  Shard min/max  Max bucket  Resizes  Hash units\n")
	fmt.Printf("%6d  %7d  %9.3f  %6d/%-6d  %10d  %7d  1 (shard + f,g from one digest)\n\n",
		st.Len, st.Stashed, st.Occupancy, st.MinShardLen, st.MaxShardLen, st.BucketLoads.MaxValue(), st.Resizes)
	fmt.Printf("grew live: %d slots → %d slots across %d shard doublings, zero flows lost\n",
		shards*startBuckets*slots, st.Capacity, st.Resizes)
	fmt.Printf("throughput: %.2f Mops/sec (%d puts/gets/deletes) across %d workers (GOMAXPROCS=%d)\n\n",
		float64(totalOps.Load())/elapsed.Seconds()/1e6, totalOps.Load(), workers, runtime.GOMAXPROCS(0))

	fmt.Println("Every flow admitted by any core stays resident until expired — including")
	fmt.Println("across online shard doublings — bucket occupancy follows the paper's")
	fmt.Println("balanced-allocation tables within each shard, and the whole concurrent")
	fmt.Println("pipeline spends one hash per packet, even while growing.")
}
