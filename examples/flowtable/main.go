// Flowtable: a router flow table built on the concurrent sharded
// multiple-choice hash map — the hardware scenario the paper's
// introduction targets ("multiple-choice hashing is used in several
// hardware systems (such as routers), and double hashing both requires
// less (pseudo-)randomness and is extremely conducive to implementation
// in hardware"), now served by many packet-processing cores at once.
//
// Flows (5-tuples, here synthesized) live in a repro.CMap: one SipHash
// digest per packet routes the flow to a shard (high bits) and derives
// its d=3 candidate buckets inside the shard (remaining bits), so the
// whole pipeline needs one hash unit — the paper's payoff — while each
// shard keeps the balanced-allocation occupancy guarantees of the
// least-loaded rule. This program runs a concurrent churn workload
// (flows arrive and expire on every worker simultaneously), verifies no
// flow is ever lost, and prints throughput plus the occupancy stats a
// router's provisioning would be dimensioned from.
//
// The table is deliberately provisioned too small for the steady state:
// it starts at a quarter of the flows it will hold and grows live —
// shards crossing the 0.80 occupancy watermark double their bucket count
// and migrate entries incrementally while every packet-processing core
// keeps hammering it. Each flow's stored digest re-derives its candidate
// buckets at the doubled geometry, so growth costs zero extra hash units
// and no flow is ever unreachable mid-migration.
//
// Run with: go run ./examples/flowtable
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	const (
		shards        = 16
		startBuckets  = 1 << 6 // per shard; grows live to 1<<8 under the watermark
		targetBuckets = 1 << 8
		slots         = 4
		d             = 3
		capacity      = shards * targetBuckets * slots
		occupancy     = 0.75 // steady-state flows / final capacity
		churnOps      = 100000
	)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	flowsPerWorker := int(occupancy*capacity) / workers

	t := repro.NewCMap(repro.CMapConfig{
		Shards: shards, BucketsPerShard: startBuckets, SlotsPerBucket: slots,
		D: d, Seed: 1, StashPerShard: 16,
		MaxLoadFactor: 0.80, MigrateBatch: 16,
	})
	fmt.Printf("flow table: %d shards × %d buckets × %d slots growing online, d=%d, %d workers, steady state %d flows (%.0f%% of final capacity)\n\n",
		shards, startBuckets, slots, d, workers, flowsPerWorker*workers, occupancy*100)

	var totalOps atomic.Int64 // map operations actually performed, all phases
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := repro.NewRandomSource(uint64(w) + 99)
			ops := 0

			// Warm up this worker's share of the steady state.
			live := make([]uint64, 0, flowsPerWorker)
			for len(live) < flowsPerWorker {
				f := src.Uint64()
				ops++
				if t.Put(f, uint64(len(live))) {
					live = append(live, f)
				}
			}
			// Churn: expire a random flow, admit a new one — concurrently
			// with every other worker doing the same.
			for op := 0; op < churnOps/workers; op++ {
				i := int(src.Uint64() % uint64(len(live)))
				ops++
				if !t.Delete(live[i]) {
					panic("live flow missing")
				}
				for {
					f := src.Uint64()
					ops++
					if t.Put(f, uint64(op)) {
						live[i] = f
						break
					}
				}
			}
			// Verify lookups after churn.
			for _, f := range live {
				ops++
				if _, ok := t.Get(f); !ok {
					panic("lookup failed after churn")
				}
			}
			totalOps.Add(int64(ops))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Finish any still-draining migration, then report.
	for t.MigrateStep(256) > 0 {
	}
	st := t.Stats()
	if st.Resizes == 0 {
		panic("steady state exceeds the initial capacity but no shard resized")
	}
	fmt.Printf("Stored    Stash  Occupancy  Shard min/max  Max bucket  Resizes  Hash units\n")
	fmt.Printf("%6d  %7d  %9.3f  %6d/%-6d  %10d  %7d  1 (shard + f,g from one digest)\n\n",
		st.Len, st.Stashed, st.Occupancy, st.MinShardLen, st.MaxShardLen, st.BucketLoads.MaxValue(), st.Resizes)
	fmt.Printf("grew live: %d slots → %d slots across %d shard doublings, zero flows lost\n",
		shards*startBuckets*slots, st.Capacity, st.Resizes)
	fmt.Printf("throughput: %.2f Mops/sec (%d puts/gets/deletes) across %d workers (GOMAXPROCS=%d)\n\n",
		float64(totalOps.Load())/elapsed.Seconds()/1e6, totalOps.Load(), workers, runtime.GOMAXPROCS(0))

	fmt.Println("Every flow admitted by any core stays resident until expired — including")
	fmt.Println("across online shard doublings — bucket occupancy follows the paper's")
	fmt.Println("balanced-allocation tables within each shard, and the whole concurrent")
	fmt.Println("pipeline spends one hash per packet, even while growing.")
}
