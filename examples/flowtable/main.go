// Flowtable: a router flow table built on the multiple-choice hash table —
// the hardware scenario the paper's introduction targets ("multiple-choice
// hashing is used in several hardware systems (such as routers), and
// double hashing both requires less (pseudo-)randomness and is extremely
// conducive to implementation in hardware").
//
// Flows (5-tuples, here synthesized) are inserted into a table of buckets
// with 4 slots each, d = 3 candidate buckets per flow. A hardware pipeline
// computes either three independent hash functions per packet, or one —
// split into (f, g) by double hashing. This program runs both pipelines
// through a realistic churn workload (flows arrive and expire) and shows
// that occupancy, overflow-to-stash and lookup behaviour are identical,
// while the double-hashing pipeline needs one hash unit instead of three.
//
// Run with: go run ./examples/flowtable
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		buckets   = 1 << 12
		slots     = 4
		d         = 3
		capacity  = buckets * slots
		occupancy = 0.75 // steady-state flows / capacity
		churnOps  = 400000
	)

	flows := int(occupancy * capacity)
	fmt.Printf("flow table: %d buckets × %d slots, d=%d, steady state %d flows (%.0f%% full)\n\n",
		buckets, slots, d, flows, occupancy*100)
	fmt.Println("Pipeline             Stored   Stash  Max bucket  Hash units")

	for _, mode := range []repro.MCHHashMode{repro.MCHIndependent, repro.MCHDoubleHashing} {
		t := repro.NewMCHTable(repro.MCHConfig{
			Buckets: buckets, SlotsPerBucket: slots, D: d,
			Mode: mode, Seed: uint64(mode) + 1, StashSize: 64,
		})
		src := repro.NewRandomSource(uint64(mode) + 99)

		// Warm up to the steady state.
		live := make([]uint64, 0, flows)
		for len(live) < flows {
			f := src.Uint64()
			if t.Put(f, uint64(len(live))) {
				live = append(live, f)
			}
		}
		// Churn: expire a random flow, admit a new one.
		for op := 0; op < churnOps; op++ {
			i := int(src.Uint64() % uint64(len(live)))
			if !t.Delete(live[i]) {
				panic("live flow missing")
			}
			for {
				f := src.Uint64()
				if t.Put(f, uint64(op)) {
					live[i] = f
					break
				}
			}
		}
		// Verify lookups after churn.
		for _, f := range live[:1000] {
			if _, ok := t.Get(f); !ok {
				panic("lookup failed after churn")
			}
		}

		hashUnits := d
		units := fmt.Sprint(hashUnits)
		if mode == repro.MCHDoubleHashing {
			units = "1 (f,g split)"
		}
		fmt.Printf("%-19s  %6d  %6d  %10d  %s\n",
			mode, t.Len(), t.StashLen(), t.BucketLoadHist().MaxValue(), units)
	}

	fmt.Println("\nSame occupancy, same overflow, same worst bucket — with a third of")
	fmt.Println("the hashing hardware. That is the paper's practical payoff.")
}
