// Loadbalancer: dimensioning a request dispatcher with the supermarket
// model — the scenario that motivates multiple-choice hashing in routers
// and load balancers (paper §1 and Table 8).
//
// A pool of n servers receives requests at 90% utilization. The dispatcher
// can either route each request to one uniformly random server, or sample
// d servers and pick the least busy. Sampling d servers needs d hash
// computations and d queue probes — unless the dispatcher derives all d
// probes from two hash values by double hashing, halving the (pseudo-)
// randomness with, as the paper shows, no loss in latency.
//
// Run with: go run ./examples/loadbalancer
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		servers = 2048
		lambda  = 0.9 // per-server utilization
		horizon = 2000.0
		burnin  = 200.0
		trials  = 4
	)

	fmt.Printf("dispatching to %d servers at λ = %.2f (%d sims × %.0fs)\n\n",
		servers, lambda, trials, horizon)
	fmt.Println("Policy                      Mean latency  Fluid limit  Hash values/req")

	run := func(name string, d int, factory repro.QueueConfig, hashes string) {
		r := repro.RunQueues(factory)
		fmt.Printf("%-26s  %12.4f  %11.4f  %s\n",
			name, r.PooledMeanSojourn(), repro.ExpectedSojourn(lambda, d), hashes)
	}

	base := repro.QueueConfig{
		N: servers, Lambda: lambda,
		Horizon: horizon, Burnin: burnin, Trials: trials,
	}

	oneCfg := base
	oneCfg.D = 1
	oneCfg.Seed = 10
	run("one random server", 1, oneCfg, "1")

	frCfg := base
	frCfg.D = 2
	frCfg.Factory = repro.NewFullyRandomChoices
	frCfg.Seed = 20
	run("best of 2, fully random", 2, frCfg, "2")

	dhCfg := base
	dhCfg.D = 2
	dhCfg.Factory = repro.NewDoubleHashChoices
	dhCfg.Seed = 30
	run("best of 2, double hashing", 2, dhCfg, "2 (from one pair)")

	fr3 := base
	fr3.D = 3
	fr3.Factory = repro.NewFullyRandomChoices
	fr3.Seed = 40
	run("best of 3, fully random", 3, fr3, "3")

	dh3 := base
	dh3.D = 3
	dh3.Factory = repro.NewDoubleHashChoices
	dh3.Seed = 50
	run("best of 3, double hashing", 3, dh3, "2 (f, g only)")

	fmt.Println("\nTwo choices cut latency ~4x at λ=0.9; double hashing keeps the")
	fmt.Println("benefit while computing only the two hash values f and g per request.")
}
