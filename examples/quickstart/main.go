// Quickstart: the paper's headline experiment in thirty lines.
//
// Throw n = 2^14 balls into n bins, each ball choosing d = 3 bins — once
// with fully random choices, once with double hashing — and compare the
// load distributions against each other and against the fluid limit.
// The three columns agree to within sampling noise: double hashing is
// indistinguishable from full randomness (the paper's Table 1/Table 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	const n, d, trials = 1 << 14, 3, 200

	fr := repro.Run(repro.Config{N: n, D: d, Hashing: repro.FullyRandom, Trials: trials, Seed: 1})
	dh := repro.Run(repro.Config{N: n, D: d, Hashing: repro.DoubleHash, Trials: trials, Seed: 2})
	fluid := repro.FluidLoadFractions(repro.FluidTails(d, 1, 6))

	fmt.Printf("n = %d balls and bins, d = %d choices, %d trials\n\n", n, d, trials)
	fmt.Println("Load  Fluid limit  Fully random  Double hashing")
	for load := 0; load <= 3; load++ {
		fmt.Printf("%4d  %11.5f  %12.5f  %14.5f\n",
			load, fluid[load], fr.FractionAtLoad(load), dh.FractionAtLoad(load))
	}

	chi := repro.CompareDistributions(&fr.Pooled, &dh.Pooled)
	fmt.Printf("\nchi-square homogeneity: p = %.3f (indistinguishable if not small)\n", chi.P)
	fmt.Printf("total variation distance: %.2e\n", repro.TotalVariation(&fr.Pooled, &dh.Pooled))
	fmt.Printf("max load seen: fully random %d, double hashing %d (log2 log2 n ≈ 3.8)\n",
		fr.MaxObservedLoad(), dh.MaxObservedLoad())
}
