// Bloomfilter: "less hashing, same performance" in practice.
//
// The paper's related-work anchor (Kirsch–Mitzenmacher 2008) proves that a
// Bloom filter whose k probe positions are derived from just two hash
// values by double hashing — g_i = h1 + i·h2 mod m — has asymptotically
// the same false-positive rate as one with k independent hash functions.
// LevelDB's and many other deployed Bloom filters use exactly this trick.
//
// This program measures both variants across k and compares them with the
// textbook (1 − e^{−kn/m})^k estimate.
//
// Run with: go run ./examples/bloomfilter
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		mBits  = 1 << 20 // 128 KiB of filter
		n      = 1 << 16 // keys inserted → 16 bits/key
		probes = 1 << 18 // membership probes for absent keys
	)

	fmt.Printf("Bloom filter: m = %d bits, n = %d keys (%d bits/key), %d probes\n\n",
		mBits, n, mBits/n, probes)
	fmt.Println(" k  Theory      k-independent  double-hashing")
	for _, k := range []int{2, 4, 6, 8, 11} {
		theory := repro.BloomTheoreticalFPR(n, mBits, k)
		ind := repro.MeasureBloomFPR(repro.NewBloomFilter(mBits, k, repro.BloomKIndependent, uint64(k)), n, probes)
		dbl := repro.MeasureBloomFPR(repro.NewBloomFilter(mBits, k, repro.BloomDoubleHashing, uint64(k)+100), n, probes)
		fmt.Printf("%2d  %.4e  %.4e     %.4e\n", k, theory, ind, dbl)
	}

	fmt.Println("\nThe two columns track the theory curve equally well: two hash")
	fmt.Println("values per key are enough, for any k. This is the same phenomenon the")
	fmt.Println("paper establishes for balanced allocations.")
}
